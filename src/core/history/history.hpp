// Longitudinal performance history (rebench::history).
//
// An append-only, schema-versioned index of per-(test, target, fom)
// results stored as content-addressed segments in the ObjectStore.  Each
// completed campaign under `--store` appends one segment holding one
// record per (test, target, fom) triple:
//
//   {"kind":"meta","schema":"rebench.history/1","prev":H,"seq":S,
//    "base":B,"records":N}
//   {"kind":"record","seq":K,"test":T,"target":G,"fom":F,
//    "manifest":MH,"env":EF,"spec":SH,"mean":..,"min":..,"max":..,
//    "repeats":R,"sim_timestamp":TS}
//
// Segments form a hash chain: `prev` names the previous segment (empty
// for the first), and the chain head lives under the ObjectStore ref
// "history/head".  Segments are *pinned* in the store so LRU pressure
// from build artefacts can never silently amputate the history; reads
// are verified by the store as usual.  Everything appended derives from
// canonical campaign results and manifests, so history bytes — like
// every other rebench artefact — are identical at every --jobs width.
//
// On top of the index: series grouping, trend rendering (table or JSON,
// with sparklines, rolling stats and changepoint flags), and the
// regression gate `checkRegression` used by `rebench history --check`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/history/changepoint.hpp"

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::store {
class ObjectStore;
}  // namespace rebench::store

namespace rebench {
struct TestRunResult;
}  // namespace rebench

namespace rebench::history {

inline constexpr std::string_view kHistorySchema = "rebench.history/1";
/// ObjectStore ref naming the newest segment of the chain.
inline constexpr std::string_view kHeadRef = "history/head";

/// One (test, target, fom) observation from one campaign.
struct HistoryRecord {
  std::uint64_t seq = 0;       // global append order, assigned by the index
  std::string test;            // test name
  std::string target;          // "system:partition"
  std::string fom;             // figure-of-merit name
  std::string manifestHash;    // campaign manifest contentHash
  std::string envFingerprint;  // BuildCache::environmentFingerprint
  std::string specHash;        // concrete spec DAG hash
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double ci = 0.0;   // 95% CI half-width of the mean (0 = unknown)
  double ess = 0.0;  // autocorrelation-corrected effective sample size
  int repeats = 0;
  double simTimestamp = 0.0;  // cumulative simulated seconds at append
};

/// Reduces campaign results to per-(test, target, fom) aggregates in
/// canonical (test, target, fom) order.  Quarantined and failed runs
/// carry no FOMs and drop out naturally.  Shared by the history appender
/// and the OpenMetrics FOM samples, so both views agree byte-wise.
struct FomAggregate {
  std::string test;
  std::string target;
  std::string fom;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Statistical view of the per-repeat samples (rebench::infer): 95%
  /// CI half-width of the mean (0 when a single repeat leaves it
  /// undefined), effective sample size and lag-1 autocorrelation.
  double ciHalfwidth = 0.0;
  double ess = 0.0;
  double autocorr = 0.0;
  int repeats = 0;
};
std::vector<FomAggregate> aggregateFoms(std::span<const TestRunResult> results);

/// The chain view over an ObjectStore.  Not thread-safe; callers append
/// from the (single-threaded) CLI tail after campaign merge.
class HistoryIndex {
 public:
  explicit HistoryIndex(store::ObjectStore& store);

  /// Optional hooks (nullable, not owned): appends emit one
  /// `history.append` span per record, queries one `history.query` span,
  /// both carrying test/target/fom/records attributes (the trace_lint
  /// contract); counters `history.append` / `history.query` tick.
  void setObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Appends `records` as one new pinned segment and advances the head
  /// ref.  Sequence numbers are assigned here (input order preserved).
  /// Returns the segment hash; empty input appends nothing and returns "".
  std::string appendSegment(std::span<const HistoryRecord> records);

  /// All records, oldest first.  A broken chain (evicted or corrupt
  /// segment) throws rebench::Error naming the missing hash.
  std::vector<HistoryRecord> readAll() const;

  /// Records matching the filters, oldest first; empty filter = any.
  std::vector<HistoryRecord> query(std::string_view test,
                                   std::string_view target = {},
                                   std::string_view fom = {}) const;

  std::size_t segmentCount() const;

 private:
  store::ObjectStore& store_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Serialization used for segment blobs (exposed for tests/tools).
std::string serializeSegment(std::span<const HistoryRecord> records,
                             std::string_view prevHash, std::uint64_t seq,
                             std::uint64_t base);
/// Parses one segment blob; returns records and fills `prevHash` /
/// `seq` when requested.  Throws rebench::Error on schema mismatch.
std::vector<HistoryRecord> parseSegment(std::string_view bytes,
                                        std::string* prevHash = nullptr,
                                        std::uint64_t* seq = nullptr);

/// Groups records into per-(test, target, fom) series, preserving append
/// order inside each series; series are keyed "test|target|fom" and the
/// map iterates in lexicographic key order.
std::map<std::string, std::vector<HistoryRecord>> groupSeries(
    std::span<const HistoryRecord> records);

struct RenderOptions {
  bool json = false;
  std::size_t window = 5;  // rolling stats + gate baseline width
  ChangepointOptions changepoint;
};

/// Renders the trend view `rebench history` prints: one block per
/// series with a sparkline, per-record rows (seq, mean, min, max,
/// repeats, rolling mean/stddev, changepoint marker) and flagged
/// changepoints.  JSON mode emits the same data as one document.
std::string renderHistory(std::span<const HistoryRecord> records,
                          const RenderOptions& options);

struct GateOptions {
  std::size_t window = 5;    // rolling-baseline width (records before newest)
  double threshold = 0.05;   // relative drop that counts as a regression
};

/// Per-series verdict of the regression gate.
struct GateResult {
  std::string series;      // "test|target|fom"
  double baseline = 0.0;   // rolling mean of up to `window` predecessors
  double latest = 0.0;
  double delta = 0.0;      // (latest - baseline) / baseline
  bool regression = false;
  bool insufficient = false;  // < 2 records: nothing to compare

  // Statistical justification (rebench::infer): a threshold-sized drop
  // only regresses when it is also *significant* — the latest mean
  // falls below the baseline minus the baseline window's own 95% CI
  // half-width — so same-variance wobble stays clean.
  double baselineCi = 0.0;  // CI half-width of the baseline window mean
  double latestCi = 0.0;    // latest record's own CI half-width
  double latestEss = 0.0;   // latest record's effective sample size
  bool significant = false;
  bool changepoint = false;  // EDM flags a down-shift over the series
  std::size_t changepointIndex = 0;  // series index; valid when changepoint
  std::string justification;  // deterministic human-readable reason
};

/// Gates every series in `records`: the newest record against the
/// rolling mean of its predecessors.  Higher FOM = better (rates);
/// a relative drop beyond `threshold` that is also statistically
/// significant (see GateResult) is a regression.  An EDM changepoint
/// scan over the series means justifies series-level regime shifts.
std::vector<GateResult> checkRegression(std::span<const HistoryRecord> records,
                                        const GateOptions& options);

}  // namespace rebench::history
