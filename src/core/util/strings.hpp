// Small string utilities shared across the framework.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rebench::str {

/// Splits `s` on `sep`; adjacent separators produce empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on any whitespace run; no empty fields are produced.
std::vector<std::string> splitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Lower-cases ASCII characters.
std::string toLower(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Formats a double with `digits` significant decimal places, trimming a
/// trailing ".0" is *not* done: benchmark tables want stable widths.
std::string fixed(double value, int digits);

/// Left/right pads `s` with spaces to at least `width` characters.
std::string padLeft(std::string_view s, std::size_t width);
std::string padRight(std::string_view s, std::size_t width);

}  // namespace rebench::str
