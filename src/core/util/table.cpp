#include "core/util/table.hpp"

#include <algorithm>

#include "core/util/strings.hpp"

namespace rebench {

void AsciiTable::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::addRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto renderRow = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      if (i != 0) line += "  ";
      line += (i == 0) ? str::padRight(cell, widths[i])
                       : str::padLeft(cell, widths[i]);
    }
    // Trailing spaces make diffs noisy; trim them.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  if (!widths.empty()) total += 2 * (widths.size() - 1);
  if (!header_.empty()) {
    out += renderRow(header_);
    out += std::string(total, '-') + "\n";
  }
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

}  // namespace rebench
