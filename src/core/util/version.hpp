// Package version numbers and version constraints, modelled on the subset of
// Spack's version semantics the paper's experiments exercise:
//
//   Version            "8.1.23", "2.7.15", "4.0.3rc1"
//   VersionConstraint  "@1.2.3" (exact), "@1.2:" (at least), "@:2" (at most),
//                      "@1.2:1.9" (range), "@=1.2" (exact, explicit), ""
//                      (any).  Prefix matching follows Spack: "@1.2" is
//                      satisfied by 1.2, 1.2.0, 1.2.9, ...
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rebench {

/// A concrete dotted version with an optional trailing alphanumeric suffix.
class Version {
 public:
  Version() = default;

  /// Parses "maj[.min[.patch...]][suffix]".  Throws ParseError on garbage.
  static Version parse(std::string_view text);

  /// Numeric components in order of significance.
  const std::vector<std::int64_t>& parts() const { return parts_; }

  /// Pre-release/suffix tag ("rc1", "a", ...), empty when absent.
  const std::string& suffix() const { return suffix_; }

  /// The original spelling ("4.0.01" keeps its leading zero).
  std::string toString() const;

  /// True when this version's components start with `prefix`'s components
  /// (Spack prefix semantics: 1.2.3 satisfies prefix 1.2).
  bool hasPrefix(const Version& prefix) const;

  /// Component-wise comparison; a missing component sorts before 0
  /// (1.2 < 1.2.0) and any suffix sorts before the plain release
  /// (1.2rc1 < 1.2).
  std::strong_ordering operator<=>(const Version& other) const;
  /// Equality is numeric: "4.0.01" == "4.0.1" (spelling is preserved for
  /// display only).
  bool operator==(const Version& other) const {
    return parts_ == other.parts_ && suffix_ == other.suffix_;
  }

 private:
  std::vector<std::int64_t> parts_;
  std::string suffix_;
  std::string text_;  // original spelling
};

/// A half-open constraint over versions: [low, high], either side optional.
class VersionConstraint {
 public:
  /// The unconstrained "any version".
  VersionConstraint() = default;

  /// Parses the text after '@': "1.2", "=1.2", "1.2:", ":1.9", "1.2:1.9".
  static VersionConstraint parse(std::string_view text);

  static VersionConstraint exactly(const Version& v);
  static VersionConstraint any() { return {}; }

  bool isAny() const { return !low_ && !high_ && !exact_; }
  bool isExact() const { return exact_.has_value(); }
  const std::optional<Version>& exactVersion() const { return exact_; }

  bool satisfiedBy(const Version& v) const;

  /// Intersection of two constraints; nullopt when provably empty.
  std::optional<VersionConstraint> intersect(
      const VersionConstraint& other) const;

  /// String form without the leading '@'; empty for "any".
  std::string toString() const;

  bool operator==(const VersionConstraint& other) const = default;

 private:
  // exact_ means "this version or a prefix-extension of it" unless strict_.
  std::optional<Version> exact_;
  bool strict_ = false;  // "=1.2" disables prefix matching
  std::optional<Version> low_;
  std::optional<Version> high_;
};

}  // namespace rebench
