#include "core/util/hash.hpp"

#include <bit>
#include <cstdio>

namespace rebench {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ull;
}

Hasher& Hasher::update(std::string_view bytes) {
  for (unsigned char c : bytes) {
    state_ ^= c;
    state_ *= kPrime;
  }
  // Length marker prevents concatenation ambiguity ("ab"+"c" vs "a"+"bc").
  return update(static_cast<std::uint64_t>(bytes.size()));
}

Hasher& Hasher::update(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (value >> (8 * i)) & 0xffu;
    state_ *= kPrime;
  }
  return *this;
}

Hasher& Hasher::update(double value) {
  return update(std::bit_cast<std::uint64_t>(value));
}

std::string Hasher::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(state_));
  return buf;
}

std::string Hasher::shortHash() const {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz234567";
  std::string out;
  std::uint64_t s = state_;
  for (int i = 0; i < 7; ++i) {
    out += kAlphabet[s & 31];
    s >>= 5;
  }
  return out;
}

std::uint64_t fnv1a(std::string_view bytes) {
  return Hasher{}.update(bytes).digest();
}

}  // namespace rebench
