// Wall-clock timing for native kernel runs.
#pragma once

#include <chrono>

namespace rebench {

/// Monotonic stopwatch; `elapsed()` returns seconds since construction or
/// the last `reset()`.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rebench
