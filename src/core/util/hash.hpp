// Deterministic content hashing used for build provenance (Principle 3/4):
// every build plan, concretized spec and perflog entry carries a stable hash
// so that "the same build" is a checkable property, not a hope.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rebench {

/// Incremental FNV-1a (64-bit).  Not cryptographic; used for provenance
/// fingerprints where collision resistance at the 2^-32 level suffices.
class Hasher {
 public:
  Hasher& update(std::string_view bytes);
  Hasher& update(std::uint64_t value);
  Hasher& update(double value);

  std::uint64_t digest() const { return state_; }

  /// 16-hex-character digest, the form stored in logs and file names.
  std::string hex() const;

  /// Spack-style short hash (first 7 chars of a base32-like encoding).
  std::string shortHash() const;

 private:
  std::uint64_t state_ = 0xcbf29ce484222325ull;
};

/// One-shot convenience.
std::uint64_t fnv1a(std::string_view bytes);

}  // namespace rebench
