// Deterministic pseudo-random number generation.
//
// Reproducibility (the point of the paper) forbids nondeterministic seeds:
// every stochastic element of the simulation — run-to-run timing noise,
// scheduler jitter, synthetic workloads — derives its stream from an
// explicit (experiment, machine, iteration) key so results replay exactly.
#pragma once

#include <cstdint>
#include <string_view>

namespace rebench {

/// SplitMix64: used to expand string keys into seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, and trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derives a generator from a textual key; equal keys → equal streams.
  static Rng fromKey(std::string_view key);

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Multiplicative noise factor: 1 + N(0, sigma), clamped to stay positive.
  double noiseFactor(double sigma);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace rebench
