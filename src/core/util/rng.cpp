#include "core/util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "core/util/hash.hpp"

namespace rebench {

Rng Rng::fromKey(std::string_view key) { return Rng(fnv1a(key)); }

double Rng::normal() {
  // Marsaglia polar method; loop terminates with probability 1.
  while (true) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::noiseFactor(double sigma) {
  return std::max(0.05, 1.0 + sigma * normal());
}

}  // namespace rebench
