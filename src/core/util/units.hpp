// Units used by Figures of Merit.  Keeping units as typed values (rather
// than free-form strings) lets the post-processor refuse to aggregate
// incompatible series — one of the silent-error classes Principle 6 targets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rebench {

enum class Unit : std::uint8_t {
  kNone,         // dimensionless (ratios, efficiencies)
  kSeconds,      // runtime
  kGBperSec,     // memory bandwidth
  kMBperSec,     // BabelStream's native output unit
  kGFlopPerSec,  // HPCG figure of merit
  kMDofPerSec,   // HPGMG figure of merit (10^6 DOF/s)
  kCount,        // iteration counts etc.
  kJoules,       // future work in the paper: energy capture
  kWatts,
};

/// Canonical display string ("GB/s", "GFlop/s", ...).
std::string_view unitName(Unit u);

/// Inverse of unitName; throws ParseError for unknown names.
Unit unitFromName(std::string_view name);

/// True for units where larger values mean better performance.
bool higherIsBetter(Unit u);

/// Formats "value unit" with a sensible precision per unit.
std::string formatQuantity(double value, Unit u);

/// Byte-size helper: "4295.0 MB" style formatting used in §3.1.
std::string formatMegabytes(double bytes);

}  // namespace rebench
