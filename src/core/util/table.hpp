// Plain-text table renderer used by every bench binary to print the
// paper's tables in the same row/column shape as published.
#pragma once

#include <string>
#include <vector>

namespace rebench {

class AsciiTable {
 public:
  /// `title` is printed above the table; may be empty.
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);

  /// Right-aligns every column except the first (label) column.
  std::string render() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rebench
