// Error handling primitives for rebench.
//
// The framework follows the C++ Core Guidelines (E.2): errors that prevent a
// function from meeting its postcondition are reported by throwing an
// exception derived from rebench::Error.  Expected, recoverable outcomes
// (e.g. a benchmark failing its sanity check) are modelled as values, not
// exceptions.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rebench {

/// Base class of all exceptions thrown by rebench itself.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed user input: spec strings, configuration files, CLI values.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A lookup for a named entity (package, system, machine model...) failed.
class NotFoundError : public Error {
 public:
  using Error::Error;
};

/// The concretizer could not satisfy a constraint set.
class ConcretizationError : public Error {
 public:
  using Error::Error;
};

/// A scheduler request was invalid or could not be honoured.
class SchedulerError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation; indicates a bug in rebench, not user error.
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throwInternal(std::string_view expr,
                                       const std::source_location& loc) {
  throw InternalError("invariant violated: " + std::string(expr) + " at " +
                      loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

/// Checks an internal invariant; throws InternalError on failure.  Active in
/// all build types: benchmarking correctness matters more than the few
/// branches this costs outside of inner kernels (kernels use plain asserts).
#define REBENCH_REQUIRE(expr)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::rebench::detail::throwInternal(#expr,                              \
                                       std::source_location::current());   \
    }                                                                      \
  } while (false)

}  // namespace rebench
