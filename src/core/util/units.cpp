#include "core/util/units.hpp"

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench {

std::string_view unitName(Unit u) {
  switch (u) {
    case Unit::kNone: return "";
    case Unit::kSeconds: return "s";
    case Unit::kGBperSec: return "GB/s";
    case Unit::kMBperSec: return "MB/s";
    case Unit::kGFlopPerSec: return "GFlop/s";
    case Unit::kMDofPerSec: return "MDOF/s";
    case Unit::kCount: return "count";
    case Unit::kJoules: return "J";
    case Unit::kWatts: return "W";
  }
  return "";
}

Unit unitFromName(std::string_view name) {
  for (Unit u : {Unit::kNone, Unit::kSeconds, Unit::kGBperSec, Unit::kMBperSec,
                 Unit::kGFlopPerSec, Unit::kMDofPerSec, Unit::kCount,
                 Unit::kJoules, Unit::kWatts}) {
    if (unitName(u) == name) return u;
  }
  throw ParseError("unknown unit: '" + std::string(name) + "'");
}

bool higherIsBetter(Unit u) {
  switch (u) {
    case Unit::kSeconds:
    case Unit::kJoules:
    case Unit::kWatts:
      return false;
    default:
      return true;
  }
}

std::string formatQuantity(double value, Unit u) {
  int digits = 2;
  if (u == Unit::kSeconds) digits = 5;
  if (u == Unit::kCount) digits = 0;
  std::string out = str::fixed(value, digits);
  const std::string_view name = unitName(u);
  if (!name.empty()) {
    out += ' ';
    out += name;
  }
  return out;
}

std::string formatMegabytes(double bytes) {
  return str::fixed(bytes / 1.0e6, 1) + " MB";
}

}  // namespace rebench
