#include "core/util/version.hpp"

#include <cctype>

#include "core/util/error.hpp"

namespace rebench {

Version Version::parse(std::string_view text) {
  if (text.empty()) throw ParseError("empty version string");
  Version v;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) break;
    std::int64_t value = 0;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + (text[i] - '0');
      ++i;
    }
    v.parts_.push_back(value);
    if (i < text.size() && text[i] == '.') {
      ++i;
      if (i == text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[i]))) {
        throw ParseError("malformed version: '" + std::string(text) + "'");
      }
    }
  }
  if (v.parts_.empty()) {
    throw ParseError("version must start with a digit: '" + std::string(text) +
                     "'");
  }
  v.suffix_ = std::string(text.substr(i));
  for (char c : v.suffix_) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') {
      throw ParseError("malformed version suffix: '" + std::string(text) + "'");
    }
  }
  v.text_ = std::string(text);
  return v;
}

std::string Version::toString() const { return text_; }

bool Version::hasPrefix(const Version& prefix) const {
  if (prefix.parts_.size() > parts_.size()) return false;
  for (std::size_t i = 0; i < prefix.parts_.size(); ++i) {
    if (parts_[i] != prefix.parts_[i]) return false;
  }
  // A prefix with a suffix only matches the identical version.
  if (!prefix.suffix_.empty()) {
    return prefix.parts_.size() == parts_.size() && prefix.suffix_ == suffix_;
  }
  return true;
}

std::strong_ordering Version::operator<=>(const Version& other) const {
  const std::size_t n = std::max(parts_.size(), other.parts_.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Missing components sort before present ones: 1.2 < 1.2.0.
    const bool haveA = i < parts_.size();
    const bool haveB = i < other.parts_.size();
    if (haveA != haveB) {
      return haveA ? std::strong_ordering::greater
                   : std::strong_ordering::less;
    }
    if (parts_[i] != other.parts_[i]) {
      return parts_[i] <=> other.parts_[i];
    }
  }
  // Suffixed versions (pre-releases) sort before the plain release.
  const bool sa = !suffix_.empty();
  const bool sb = !other.suffix_.empty();
  if (sa != sb) return sa ? std::strong_ordering::less : std::strong_ordering::greater;
  return suffix_ <=> other.suffix_;
}

VersionConstraint VersionConstraint::parse(std::string_view text) {
  VersionConstraint c;
  if (text.empty()) return c;
  if (text.front() == '=') {
    c.exact_ = Version::parse(text.substr(1));
    c.strict_ = true;
    return c;
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    c.exact_ = Version::parse(text);
    return c;
  }
  const std::string_view lo = text.substr(0, colon);
  const std::string_view hi = text.substr(colon + 1);
  if (!lo.empty()) c.low_ = Version::parse(lo);
  if (!hi.empty()) c.high_ = Version::parse(hi);
  if (c.low_ && c.high_ && *c.high_ < *c.low_) {
    throw ParseError("empty version range: '" + std::string(text) + "'");
  }
  return c;
}

VersionConstraint VersionConstraint::exactly(const Version& v) {
  VersionConstraint c;
  c.exact_ = v;
  c.strict_ = true;
  return c;
}

bool VersionConstraint::satisfiedBy(const Version& v) const {
  if (exact_) {
    return strict_ ? (v == *exact_) : v.hasPrefix(*exact_);
  }
  if (low_ && v < *low_) return false;
  // A ":1.9" upper bound admits any 1.9.x, i.e. prefix semantics on top.
  if (high_ && *high_ < v && !v.hasPrefix(*high_)) return false;
  return true;
}

std::optional<VersionConstraint> VersionConstraint::intersect(
    const VersionConstraint& other) const {
  if (isAny()) return other;
  if (other.isAny()) return *this;
  if (exact_) {
    if (other.satisfiedBy(*exact_)) return *this;
    if (other.exact_ && satisfiedBy(*other.exact_)) return other;
    return std::nullopt;
  }
  if (other.exact_) return other.intersect(*this);
  VersionConstraint out;
  out.low_ = low_;
  out.high_ = high_;
  if (other.low_ && (!out.low_ || *out.low_ < *other.low_)) {
    out.low_ = other.low_;
  }
  if (other.high_ && (!out.high_ || *other.high_ < *out.high_)) {
    out.high_ = other.high_;
  }
  if (out.low_ && out.high_ && *out.high_ < *out.low_) return std::nullopt;
  return out;
}

std::string VersionConstraint::toString() const {
  if (isAny()) return "";
  if (exact_) return (strict_ ? "=" : "") + exact_->toString();
  std::string out;
  if (low_) out += low_->toString();
  out += ':';
  if (high_) out += high_->toString();
  return out;
}

}  // namespace rebench
