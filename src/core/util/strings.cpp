#include "core/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace rebench::str {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string replaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string padLeft(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(0, width - out.size(), ' ');
  return out;
}

std::string padRight(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace rebench::str
