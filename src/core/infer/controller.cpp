#include "core/infer/controller.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "core/framework/pipeline.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/util/strings.hpp"

namespace rebench::infer {

namespace {

/// Accumulated state for one (test, target) pair across rounds.
struct PairState {
  std::string test;
  std::string target;  // "system:partition"
  std::vector<TestRunResult> results;  // repeat-ascending
  /// fom -> passing-run samples in repeat order (map = sorted foms).
  std::map<std::string, std::vector<double>> samples;
  int executedRepeats = 0;  // repeats scheduled so far
  int rounds = 0;
  bool converged = false;
  bool exhausted = false;  // budget spent or no data will ever come
};

bool seriesConverged(const SeriesEstimate& est, double target) {
  return est.n >= 2 && !est.drift && est.ciRelative <= target;
}

/// Accumulates one round's executor accounting into the caller's
/// report; makespan/serial seconds are additive across rounds because
/// rounds are sequential barriers.
void foldReport(CampaignReport* into, const CampaignReport& round) {
  if (into == nullptr) return;
  into->executed += round.executed;
  into->skippedJournaled += round.skippedJournaled;
  into->quarantined += round.quarantined;
  for (const std::string& key : round.quarantinedKeys) {
    into->quarantinedKeys.push_back(key);
  }
  into->uniqueBuilds += round.uniqueBuilds;
  into->dedupedBuilds += round.dedupedBuilds;
  into->simulatedSerialSeconds += round.simulatedSerialSeconds;
  into->simulatedMakespanSeconds += round.simulatedMakespanSeconds;
  into->workerLanesTouched =
      std::max(into->workerLanesTouched, round.workerLanesTouched);
}

}  // namespace

int nextWindowGrowth(const SeriesEstimate& worst, double targetRelHalfwidth,
                     int executed) {
  int extra = 1;
  if (worst.n < 2 || !std::isfinite(worst.ciRelative)) {
    extra = std::max(1, 2 - worst.n);
  } else if (worst.ciRelative > targetRelHalfwidth) {
    // Half-width shrinks ~1/sqrt(n): project the total sample count
    // that reaches the target and schedule the difference.
    const double factor = worst.ciRelative / targetRelHalfwidth;
    const int required =
        static_cast<int>(std::ceil(static_cast<double>(worst.n) * factor *
                                   factor));
    extra = std::max(1, required - worst.n);
  }
  if (worst.drift) extra = std::max(extra, worst.n);
  // At most double per round: early noisy estimates wildly overshoot.
  return std::clamp(extra, 1, std::max(1, executed));
}

std::vector<TestRunResult> runAdaptive(
    Pipeline& pipeline, std::span<const RegressionTest> tests,
    std::span<const std::string> targets, const InferenceOptions& options,
    PerfLog* perflog, RunJournal* journal, CampaignReport* report,
    ControllerReport* controller) {
  const double target = options.ciHalfwidth;
  const int minRepeats = std::max(1, options.minRepeats);
  const int maxRepeats = std::max(minRepeats, options.maxRepeats);

  std::vector<PairState> pairs;  // canonical first-seen order
  std::map<std::string, std::size_t> pairIndex;
  std::map<std::string, RepeatWindow> windows;
  std::optional<RepeatWindow> defaultWindow = RepeatWindow{0, minRepeats};
  int rounds = 0;
  std::size_t totalRuns = 0;

  while (true) {
    CampaignReport roundReport;
    const std::vector<TestRunResult> roundResults = pipeline.runWindows(
        tests, targets, windows, defaultWindow, perflog, journal,
        &roundReport);
    foldReport(report, roundReport);
    ++rounds;

    std::map<std::string, int> roundCounts;
    for (const TestRunResult& result : roundResults) {
      const std::string key = result.testName + "@" + result.system + ":" +
                              result.partition;
      auto it = pairIndex.find(key);
      if (it == pairIndex.end()) {
        it = pairIndex.emplace(key, pairs.size()).first;
        PairState state;
        state.test = result.testName;
        state.target = result.system + ":" + result.partition;
        pairs.push_back(std::move(state));
      }
      PairState& state = pairs[it->second];
      if (result.passed) {
        for (const auto& [fom, value] : result.foms) {
          state.samples[fom].push_back(value);
        }
      }
      state.results.push_back(result);
      ++roundCounts[key];
      ++totalRuns;
    }

    // Decide each pair that participated this round (round 0: all).
    windows.clear();
    for (auto& [key, index] : pairIndex) {
      PairState& state = pairs[index];
      if (state.converged || state.exhausted) continue;
      const auto counted = roundCounts.find(key);
      if (counted == roundCounts.end()) {
        // Window requested but nothing came back (journal-resumed
        // repeats): no new data will ever arrive for it, stop here.
        if (defaultWindow == std::nullopt) state.exhausted = true;
        continue;
      }
      state.executedRepeats += counted->second;
      ++state.rounds;

      if (state.samples.empty()) {
        state.exhausted = true;  // every run failed or was quarantined
        continue;
      }
      SeriesEstimate worst;
      bool haveWorst = false;
      bool allConverged = true;
      for (const auto& [fom, values] : state.samples) {
        const SeriesEstimate est = estimateSeries(values);
        if (!seriesConverged(est, target)) {
          allConverged = false;
          if (!haveWorst || est.ciRelative > worst.ciRelative ||
              (est.drift && !worst.drift)) {
            worst = est;
            haveWorst = true;
          }
        }
      }
      if (allConverged && state.executedRepeats >= minRepeats) {
        state.converged = true;
        continue;
      }
      if (state.executedRepeats >= maxRepeats) {
        state.exhausted = true;
        continue;
      }
      const int extra = nextWindowGrowth(worst, target,
                                         state.executedRepeats);
      const int end =
          std::min(maxRepeats, state.executedRepeats + extra);
      windows[key] = RepeatWindow{state.executedRepeats, end};
    }
    defaultWindow = std::nullopt;
    if (windows.empty()) break;
    if (roundResults.empty() && rounds > 1) break;  // resume starvation
  }

  // Canonical re-assembly: pairs in first-seen (target, test) order,
  // repeats ascending inside each pair — the exact order a fixed-repeat
  // runAll would have produced, so manifests and history agree.
  std::vector<TestRunResult> all;
  for (const PairState& state : pairs) {
    for (const TestRunResult& result : state.results) all.push_back(result);
  }

  obs::Tracer* tracer = pipeline.tracer();
  obs::MetricsRegistry* metrics = pipeline.metrics();
  std::vector<FomDecision> decisions;
  for (const PairState& state : pairs) {
    const TestRunResult* provenance = nullptr;
    for (const TestRunResult& result : state.results) {
      if (result.passed) {
        provenance = &result;
        break;
      }
    }
    for (const auto& [fom, values] : state.samples) {
      FomDecision decision;
      decision.test = state.test;
      decision.target = state.target;
      decision.fom = fom;
      decision.estimate = estimateSeries(values);
      decision.rounds = state.rounds;
      decision.converged = state.converged;
      const SeriesEstimate& est = decision.estimate;

      if (perflog != nullptr && provenance != nullptr) {
        PerfLogEntry entry;
        entry.system = provenance->system;
        entry.partition = provenance->partition;
        entry.environ = provenance->environ;
        entry.testName = state.test;
        if (provenance->concreteSpec != nullptr) {
          entry.spec = provenance->concreteSpec->shortForm();
          entry.specHash = provenance->concreteSpec->dagHash();
        }
        entry.binaryId = provenance->build.binaryId;
        entry.jobId = std::to_string(provenance->jobId);
        entry.fomName = fom;
        entry.value = est.mean;
        for (const RegressionTest& test : tests) {
          if (test.name != state.test) continue;
          for (const PerfPattern& pattern : test.perfPatterns) {
            if (pattern.fomName == fom) entry.unit = pattern.unit;
          }
        }
        entry.result = "summary";
        entry.extras["repeats"] = std::to_string(est.n);
        entry.extras["ci_halfwidth"] = str::fixed(est.ciHalfwidth, 6);
        entry.extras["ci_rel"] = str::fixed(est.ciRelative, 6);
        entry.extras["ess"] = str::fixed(est.ess, 3);
        entry.extras["autocorr"] = str::fixed(est.autocorr, 6);
        entry.extras["converged"] = state.converged ? "true" : "false";
        entry.timestamp = pipeline.nextTimestamp();
        perflog->append(entry);
      }

      if (tracer != nullptr) {
        tracer->beginSpan("infer.controller");
        tracer->setAttr("test", state.test);
        tracer->setAttr("target", state.target);
        tracer->setAttr("fom", fom);
        tracer->setAttr("repeats", std::to_string(est.n));
        tracer->setAttr("ess", str::fixed(est.ess, 3));
        tracer->setAttr("ci_halfwidth", str::fixed(est.ciHalfwidth, 6));
        tracer->setAttr("ci_rel", str::fixed(est.ciRelative, 6));
        tracer->setAttr("mean", str::fixed(est.mean, 6));
        tracer->setAttr("converged", state.converged ? "true" : "false");
        tracer->setAttr("rounds", std::to_string(state.rounds));
        tracer->endSpan();
      }
      if (metrics != nullptr) {
        const std::string suffix =
            state.test + "/" + state.target + "/" + fom;
        metrics->gauge("infer.ci_halfwidth/" + suffix).set(est.ciHalfwidth);
        metrics->gauge("infer.ess/" + suffix).set(est.ess);
        metrics->counter(state.converged ? "infer.converged"
                                         : "infer.capped")
            .inc();
      }
      decisions.push_back(std::move(decision));
    }
  }
  if (metrics != nullptr) {
    metrics->counter("infer.rounds").inc(static_cast<std::uint64_t>(rounds));
    metrics->counter("infer.runs").inc(
        static_cast<std::uint64_t>(totalRuns));
  }
  if (controller != nullptr) {
    controller->decisions = std::move(decisions);
    controller->rounds = rounds;
    controller->totalRuns = totalRuns;
  }
  return all;
}

}  // namespace rebench::infer
