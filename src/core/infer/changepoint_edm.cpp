#include "core/infer/changepoint_edm.hpp"

#include <algorithm>
#include <cmath>

namespace rebench::infer {

namespace {

/// Median absolute deviation about the series median, scaled by 1.4826
/// to be consistent with the standard deviation under normal noise.
double madScale(std::span<const double> values, double median) {
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  return 1.4826 * medianOf(deviations);
}

void segment(std::span<const double> values, std::size_t offset,
             const EdmOptions& options, std::vector<EdmChangepoint>* out) {
  const std::size_t n = values.size();
  if (n < 2 * options.minSegment) return;

  const double seriesMedian = medianOf(values);
  double scale = madScale(values, seriesMedian);
  // A constant (or near-constant) segment has zero MAD; fall back to a
  // tiny relative scale so an exact-zero shift still reports stat 0
  // while a real step in a noiseless series scores astronomically.
  if (scale <= 0.0) {
    scale = std::fabs(seriesMedian) > 0.0 ? 1e-9 * std::fabs(seriesMedian)
                                          : 1e-12;
  }

  std::size_t bestSplit = 0;
  double bestStat = 0.0;
  double bestBefore = 0.0;
  double bestAfter = 0.0;
  for (std::size_t t = options.minSegment; t + options.minSegment <= n; ++t) {
    const double left = medianOf(values.subspan(0, t));
    const double right = medianOf(values.subspan(t));
    const double weight =
        static_cast<double>(t) * static_cast<double>(n - t) /
        static_cast<double>(n);
    const double stat = weight * std::fabs(right - left) / scale;
    if (stat > bestStat) {
      bestStat = stat;
      bestSplit = t;
      bestBefore = left;
      bestAfter = right;
    }
  }
  if (bestSplit == 0 || bestStat < options.threshold) return;
  const double floor =
      options.relFloor * std::max(std::fabs(bestBefore), 1e-300);
  if (std::fabs(bestAfter - bestBefore) < floor) return;

  segment(values.subspan(0, bestSplit), offset, options, out);
  out->push_back({offset + bestSplit, bestBefore, bestAfter, bestStat});
  segment(values.subspan(bestSplit), offset + bestSplit, options, out);
}

}  // namespace

double medianOf(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

std::vector<EdmChangepoint> detectChangepointsEdm(
    std::span<const double> values, const EdmOptions& options) {
  std::vector<EdmChangepoint> flags;
  segment(values, 0, options, &flags);
  return flags;
}

}  // namespace rebench::infer
