// Statistical estimators for FOM sample series (rebench::infer).
//
// The adaptive run-length controller and the history regression gate
// both need an honest answer to "how well do we know this mean?".  A
// naive s/sqrt(n) confidence interval is wrong twice over for benchmark
// repeats: consecutive repeats can be autocorrelated (warm caches,
// shared daemons), and early repeats can drift while the system warms
// up.  `estimateSeries` therefore reports, from plain arithmetic over
// the sample order:
//
//   * mean and sample standard deviation (n-1 denominator),
//   * lag-k autocovariance folded into an effective sample size (ESS)
//     via Geyer's initial-positive-sequence rule — the integrated
//     autocorrelation time is 1 + 2*sum(rho_k) truncated at the first
//     non-positive rho_k (and at lag n/2),
//   * a 95% CI half-width t(0.975, ess-1) * s / sqrt(ess) using the
//     ESS instead of n, so correlated samples don't fake convergence,
//   * a half-split drift guard: the means of the first and second half
//     must agree within 3 combined standard errors, otherwise warmup
//     drift is still underway and the series must not be declared
//     converged regardless of its CI.
//
// Everything is deterministic in the input order — no RNG, no wall
// clock — which is what lets the controller produce byte-identical
// perflogs at every --jobs width.
#pragma once

#include <span>

namespace rebench::infer {

struct SeriesEstimate {
  int n = 0;                 // raw sample count
  double mean = 0.0;
  double stddev = 0.0;       // sample stddev (n-1); 0 when n < 2
  double autocorr = 0.0;     // lag-1 autocorrelation estimate (0 when n < 4)
  double ess = 0.0;          // effective sample size, clamped to [1, n]
  double ciHalfwidth = 0.0;  // absolute 95% half-width (HUGE_VAL when n < 2)
  double ciRelative = 0.0;   // ciHalfwidth / |mean| (HUGE_VAL when mean == 0)
  bool drift = false;        // half-split means disagree beyond noise
};

/// Estimates the series statistics described above.  Empty input yields
/// the zero-initialized struct with an infinite CI.
SeriesEstimate estimateSeries(std::span<const double> samples);

/// Two-sided 97.5% Student-t quantile (the 95% CI multiplier) for `df`
/// degrees of freedom; df <= 0 is treated as 1 and df > 30 decays to
/// the normal quantile 1.96.
double tQuantile975(int df);

}  // namespace rebench::infer
