// Adaptive run-length controller (rebench::infer) — pilot-bench's core
// idea as a campaign driver.
//
// Instead of a fixed `--repeats N`, the controller samples each
// (test, target) pair in rounds until every FOM mean's 95% confidence
// interval (autocorrelation-corrected, see estimator.hpp) is within the
// requested relative half-width, or the repeat budget runs out:
//
//   round 0:  every pair runs repeats [0, minRepeats)
//   round k:  each unconverged pair runs a window [n, n') where n' is
//             the projected sample count to reach the target CI,
//             clamped to at most double per round and to maxRepeats
//
// Each round is one Pipeline::runWindows call, so the parallel
// executor's guarantees hold: within a round output is canonical and
// byte-identical at every --jobs width, and because the next round's
// windows are a pure function of the accumulated FOM samples — which
// are themselves pure functions of (test, target, repeatIndex) under
// the sim's seeded noise — the whole adaptive schedule is deterministic
// and jobs-invariant.  Perflog order is round-major (canonical within
// each round), timestamps stay monotone via the pipeline's logical
// clock, and the returned results are re-assembled in canonical
// (target, test, repeat) order so manifests number repeats exactly as a
// fixed-repeat campaign would.
//
// After the loop the controller appends one `result=summary` perflog
// row per (test, target, fom) carrying mean/CI/ESS/autocorrelation,
// emits one `infer.controller` span per decision (trace_lint contract:
// test, target, fom, repeats, ess, ci_halfwidth) and sets
// `infer.ci_halfwidth/...` / `infer.ess/...` gauges plus `infer.*`
// counters on the pipeline's metrics registry.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/infer/estimator.hpp"

namespace rebench {
class Pipeline;
class PerfLog;
class RunJournal;
struct CampaignReport;
struct RegressionTest;
struct TestRunResult;
}  // namespace rebench

namespace rebench::infer {

struct InferenceOptions {
  /// Requested relative CI half-width (e.g. 0.05 = ±5% of the mean).
  /// <= 0 disables adaptive control entirely.
  double ciHalfwidth = 0.0;
  int minRepeats = 3;
  int maxRepeats = 64;

  bool active() const { return ciHalfwidth > 0.0; }
};

/// Outcome of the controller for one (test, target, fom) series.
struct FomDecision {
  std::string test;
  std::string target;  // "system:partition"
  std::string fom;
  SeriesEstimate estimate;
  int rounds = 0;          // rounds the pair participated in
  bool converged = false;  // CI met within the budget, no drift
};

struct ControllerReport {
  std::vector<FomDecision> decisions;  // canonical (target, test, fom) order
  int rounds = 0;
  std::size_t totalRuns = 0;  // results produced across all rounds
};

/// Runs the adaptive campaign described above.  Results come back in
/// canonical (target, test, repeat) order; `controller` (nullable)
/// receives the per-series decisions.  `report` accumulates executor
/// accounting across rounds.
std::vector<TestRunResult> runAdaptive(
    Pipeline& pipeline, std::span<const RegressionTest> tests,
    std::span<const std::string> targets, const InferenceOptions& options,
    PerfLog* perflog = nullptr, RunJournal* journal = nullptr,
    CampaignReport* report = nullptr, ControllerReport* controller = nullptr);

/// The window-growth rule, exposed for unit tests: given the worst
/// series estimate over a pair and the target relative half-width,
/// returns how many additional repeats to schedule next round (>= 1,
/// at most doubling the `executed` count).
int nextWindowGrowth(const SeriesEstimate& worst, double targetRelHalfwidth,
                     int executed);

}  // namespace rebench::infer
