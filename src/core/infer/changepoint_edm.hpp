// E-divisive-with-medians (EDM) changepoint detection (rebench::infer).
//
// pilot-bench's detect_changepoint_edm: a robust alternative to the
// sliding-window mean-shift scan in history/changepoint.  EDM splits a
// series at the point that maximizes a scaled between-segment median
// distance, normalized by a robust (MAD-based) scale estimate, then
// recurses on both sides (binary segmentation).  Medians make it blind
// to the occasional outlier repeat that wrecks mean-based tests, and
// the scaled statistic
//
//   stat(t) = (t * (n - t) / n) * |median(left) - median(right)| / scale
//
// peaks at a genuine regime boundary rather than at the series edges.
// A split is accepted only when the statistic clears `threshold` AND
// the raw median shift clears a relative floor, so flat-but-noisy
// series yield no changepoints.  Deterministic: no permutation test —
// plain arithmetic in input order, same series, same flags.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rebench::infer {

struct EdmOptions {
  std::size_t minSegment = 3;  // min points on each side of a split
  double threshold = 2.0;      // min scaled statistic to accept a split
  double relFloor = 0.02;      // min |shift| as a fraction of |medianBefore|
};

struct EdmChangepoint {
  std::size_t index = 0;  // first point of the new regime
  double medianBefore = 0.0;
  double medianAfter = 0.0;
  double statistic = 0.0;  // scaled EDM statistic at the split
};

/// All accepted changepoints, ascending by index.
std::vector<EdmChangepoint> detectChangepointsEdm(
    std::span<const double> values, const EdmOptions& options = {});

/// Median of `values` (empty input reports 0).  Exposed for tests.
double medianOf(std::span<const double> values);

}  // namespace rebench::infer
