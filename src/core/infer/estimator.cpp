#include "core/infer/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace rebench::infer {

namespace {

// t(0.975, df) for df = 1..30; beyond that the normal quantile is
// within 0.3% and we use 1.96.
constexpr double kT975[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};

double meanOf(std::span<const double> xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

/// Biased (1/n) lag-k autocovariance about `mean` — the standard
/// spectral estimator; the bias keeps the Geyer sum stable.
double autocovariance(std::span<const double> xs, double mean,
                      std::size_t lag) {
  double sum = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    sum += (xs[i] - mean) * (xs[i + lag] - mean);
  }
  return sum / static_cast<double>(xs.size());
}

}  // namespace

double tQuantile975(int df) {
  if (df <= 0) df = 1;
  if (df <= 30) return kT975[df - 1];
  return 1.96;
}

SeriesEstimate estimateSeries(std::span<const double> samples) {
  SeriesEstimate est;
  est.n = static_cast<int>(samples.size());
  if (est.n == 0) {
    est.ciHalfwidth = HUGE_VAL;
    est.ciRelative = HUGE_VAL;
    return est;
  }
  est.mean = meanOf(samples);
  if (est.n < 2) {
    est.ess = 1.0;
    est.ciHalfwidth = HUGE_VAL;
    est.ciRelative = HUGE_VAL;
    return est;
  }

  double ss = 0.0;
  for (double x : samples) ss += (x - est.mean) * (x - est.mean);
  est.stddev = std::sqrt(ss / static_cast<double>(est.n - 1));

  // Geyer initial-positive-sequence ESS: act = 1 + 2*sum(rho_k) while
  // rho_k stays positive, truncated at lag n/2.  Too-short series carry
  // no usable autocorrelation signal, so n < 4 keeps ess = n.
  est.ess = static_cast<double>(est.n);
  const double gamma0 = ss / static_cast<double>(est.n);
  if (est.n >= 4 && gamma0 > 0.0) {
    double act = 1.0;
    for (std::size_t lag = 1; lag <= samples.size() / 2; ++lag) {
      const double rho = autocovariance(samples, est.mean, lag) / gamma0;
      if (lag == 1) est.autocorr = rho;
      if (rho <= 0.0) break;
      act += 2.0 * rho;
    }
    est.ess = std::clamp(static_cast<double>(est.n) / act, 1.0,
                         static_cast<double>(est.n));
  }

  const int df = std::max(1, static_cast<int>(est.ess) - 1);
  est.ciHalfwidth = tQuantile975(df) * est.stddev / std::sqrt(est.ess);
  est.ciRelative = est.mean != 0.0 ? est.ciHalfwidth / std::fabs(est.mean)
                                   : (est.ciHalfwidth == 0.0 ? 0.0 : HUGE_VAL);

  // Half-split drift guard: warmup trends shrink within-half variance
  // while the halves' means diverge, which a plain CI cannot see.
  if (est.n >= 6) {
    const std::size_t half = samples.size() / 2;
    const auto first = samples.subspan(0, half);
    const auto second = samples.subspan(half);
    const double m1 = meanOf(first);
    const double m2 = meanOf(second);
    double v1 = 0.0;
    for (double x : first) v1 += (x - m1) * (x - m1);
    v1 /= static_cast<double>(first.size() - 1);
    double v2 = 0.0;
    for (double x : second) v2 += (x - m2) * (x - m2);
    v2 /= static_cast<double>(second.size() - 1);
    const double se = std::sqrt(v1 / static_cast<double>(first.size()) +
                                v2 / static_cast<double>(second.size()));
    est.drift = std::fabs(m1 - m2) > 3.0 * se && se > 0.0
                    ? true
                    : (se == 0.0 && m1 != m2);
  }
  return est;
}

}  // namespace rebench::infer
