// The built-in recipe collection.  Version sets are chosen to cover every
// concrete version the paper reports (Table 3, §3.1 compiler notes) plus
// neighbours, so the concretizer has real choices to make.
#include "core/pkg/recipe.hpp"

namespace rebench {

namespace {

PackageRecipe makeGcc() {
  PackageRecipe p("gcc");
  p.describe("GNU Compiler Collection");
  for (const char* v : {"13.1.0", "12.2.0", "12.1.0", "11.2.0", "11.1.0",
                        "10.3.0", "9.3.0", "9.2.0"}) {
    p.version(v);
  }
  p.provides("cxx").provides("c").provides("fortran");
  return p;
}

PackageRecipe makeOneapi() {
  PackageRecipe p("oneapi");
  p.describe("Intel oneAPI DPC++/C++ compiler");
  for (const char* v : {"2023.1.0", "2022.2.0", "2021.4.0"}) p.version(v);
  p.provides("cxx").provides("c").provides("sycl-impl");
  return p;
}

PackageRecipe makeNvhpc() {
  PackageRecipe p("nvhpc");
  p.describe("NVIDIA HPC SDK compilers");
  for (const char* v : {"23.5", "22.11", "21.9"}) p.version(v);
  p.provides("cxx").provides("c");
  return p;
}

PackageRecipe makeCce() {
  PackageRecipe p("cce");
  p.describe("Cray Compiling Environment");
  for (const char* v : {"15.0.0", "14.0.1", "13.0.2"}) p.version(v);
  p.provides("cxx").provides("c").provides("fortran");
  return p;
}

PackageRecipe makePython() {
  PackageRecipe p("python");
  p.describe("CPython interpreter");
  for (const char* v : {"3.11.4", "3.10.12", "3.8.2", "3.7.5", "2.7.15"}) {
    p.version(v);
  }
  return p;
}

PackageRecipe makeCmake() {
  PackageRecipe p("cmake");
  p.describe("CMake build-system generator");
  for (const char* v : {"3.26.3", "3.25.1", "3.20.2", "3.16.5"}) p.version(v);
  return p;
}

PackageRecipe makeNinja() {
  PackageRecipe p("ninja");
  p.describe("Ninja build tool");
  for (const char* v : {"1.11.1", "1.10.2"}) p.version(v);
  return p;
}

PackageRecipe makeOpenmpi() {
  PackageRecipe p("openmpi");
  p.describe("Open MPI message passing library");
  for (const char* v : {"4.1.4", "4.0.4", "4.0.3", "3.1.6"}) p.version(v);
  p.provides("mpi");
  return p;
}

PackageRecipe makeMpich() {
  PackageRecipe p("mpich");
  p.describe("MPICH message passing library");
  for (const char* v : {"4.1", "3.4.2"}) p.version(v);
  p.provides("mpi");
  return p;
}

PackageRecipe makeCrayMpich() {
  PackageRecipe p("cray-mpich");
  p.describe("HPE Cray MPI (PALS/Slingshot)");
  for (const char* v : {"8.1.23", "8.1.15"}) p.version(v);
  p.provides("mpi");
  return p;
}

PackageRecipe makeMvapich() {
  PackageRecipe p("mvapich");
  p.describe("MVAPICH MPI over InfiniBand");
  for (const char* v : {"2.3.7", "2.3.6"}) p.version(v);
  p.provides("mpi");
  return p;
}

PackageRecipe makeCuda() {
  PackageRecipe p("cuda");
  p.describe("NVIDIA CUDA toolkit");
  for (const char* v : {"12.1.1", "11.8.0", "11.2.2", "10.2.89"}) p.version(v);
  return p;
}

PackageRecipe makeTbb() {
  PackageRecipe p("intel-tbb");
  p.describe("Intel oneAPI Threading Building Blocks");
  for (const char* v : {"2021.9.0", "2021.4.0", "2020.3"}) p.version(v);
  // §3.1: "incompatibilities (... Intel-TBB on Thunder)".
  p.conflictsWith("intel-tbb arch=aarch64",
                  "Intel TBB does not build on ThunderX2");
  p.variant({"arch", std::string("x86_64"), {"x86_64", "aarch64"},
             "target architecture"});
  return p;
}

PackageRecipe makeOpencl() {
  PackageRecipe p("opencl-loader");
  p.describe("Khronos OpenCL ICD loader");
  for (const char* v : {"2023.04.17", "2022.09.30"}) p.version(v);
  p.provides("opencl");
  return p;
}

PackageRecipe makeKokkos() {
  PackageRecipe p("kokkos");
  p.describe("Kokkos performance-portability programming model");
  for (const char* v : {"4.0.01", "3.7.02", "3.6.01"}) p.version(v);
  p.variant({"backend", std::string("openmp"),
             {"openmp", "cuda", "serial"}, "device backend"});
  p.dependsOnWhen("cuda@11:", "backend", std::string("cuda"));
  return p;
}

PackageRecipe makeMkl() {
  PackageRecipe p("intel-oneapi-mkl");
  p.describe("Intel oneAPI Math Kernel Library (ships optimised HPCG)");
  for (const char* v : {"2023.1.0", "2022.2.0"}) p.version(v);
  p.provides("blas").provides("lapack");
  return p;
}

PackageRecipe makeBabelstream() {
  PackageRecipe p("babelstream");
  p.describe("BabelStream memory-bandwidth benchmark (many models)");
  for (const char* v : {"4.0", "3.4"}) p.version(v);
  p.variant({"model", std::string("omp"),
             {"serial", "omp", "kokkos", "cuda", "ocl", "sycl", "tbb",
              "std-data", "std-indices", "std-ranges"},
             "programming model to build"});
  // The paper's invocation spells the OpenMP build as "+omp"
  // (babelstream%gcc@9.2.0 +omp); accept that spelling as well.
  p.variant({"omp", true, {}, "alias: build the OpenMP model"});
  p.dependsOn("cmake@3.16:", DepKind::kBuild);
  p.dependsOnWhen("kokkos@3.6:", "model", std::string("kokkos"));
  p.dependsOnWhen("cuda@10.2:", "model", std::string("cuda"));
  p.dependsOnWhen("opencl-loader", "model", std::string("ocl"));
  p.dependsOnWhen("intel-tbb@2020.3:", "model", std::string("tbb"));
  p.dependsOnWhen("intel-tbb@2020.3:", "model", std::string("std-data"));
  p.dependsOnWhen("intel-tbb@2020.3:", "model", std::string("std-indices"));
  // §3.1: "the build system has conflicts with newer [GCC] versions" for
  // the OpenCL build on Isambard-MACS.
  p.conflictsWith("babelstream model=ocl %gcc@10:",
                  "OpenCL build breaks with gcc >= 10 (see paper §3.1)");
  return p;
}

PackageRecipe makeHpcg() {
  PackageRecipe p("hpcg");
  p.describe("High Performance Conjugate Gradient benchmark + variants");
  for (const char* v : {"3.1", "3.0"}) p.version(v);
  p.variant({"operator", std::string("csr"),
             {"csr", "csr-opt", "matrix-free", "lfric"},
             "operator/algorithm variant (Table 2)"});
  p.dependsOn("mpi");
  p.dependsOnWhen("intel-oneapi-mkl@2022:", "operator",
                  std::string("csr-opt"));
  return p;
}

PackageRecipe makeHpgmg() {
  PackageRecipe p("hpgmg");
  p.describe("HPGMG-FV: finite-volume full multigrid benchmark");
  for (const char* v : {"0.4", "0.3"}) p.version(v);
  p.variant({"fv", true, {}, "build the finite-volume solver"});
  p.dependsOn("mpi");
  p.dependsOn("python", DepKind::kBuild);
  return p;
}

PackageRecipe makeStream() {
  PackageRecipe p("stream");
  p.describe("McCalpin STREAM benchmark");
  p.version("5.10");
  return p;
}

PackageRecipe makeOsuBenchmarks() {
  PackageRecipe p("osu-micro-benchmarks");
  p.describe("OSU MPI micro-benchmarks");
  for (const char* v : {"7.1", "6.2"}) p.version(v);
  p.dependsOn("mpi");
  return p;
}

}  // namespace

PackageRepository builtinRepository() {
  PackageRepository repo;
  repo.add(makeGcc());
  repo.add(makeOneapi());
  repo.add(makeNvhpc());
  repo.add(makeCce());
  repo.add(makePython());
  repo.add(makeCmake());
  repo.add(makeNinja());
  repo.add(makeOpenmpi());
  repo.add(makeMpich());
  repo.add(makeCrayMpich());
  repo.add(makeMvapich());
  repo.add(makeCuda());
  repo.add(makeTbb());
  repo.add(makeOpencl());
  repo.add(makeKokkos());
  repo.add(makeMkl());
  repo.add(makeBabelstream());
  repo.add(makeHpcg());
  repo.add(makeHpgmg());
  repo.add(makeStream());
  repo.add(makeOsuBenchmarks());
  return repo;
}

}  // namespace rebench
