#include "core/pkg/recipe.hpp"

#include <algorithm>

#include "core/util/error.hpp"

namespace rebench {

PackageRecipe& PackageRecipe::describe(std::string text) {
  description_ = std::move(text);
  return *this;
}

PackageRecipe& PackageRecipe::version(std::string_view v) {
  versions_.push_back(Version::parse(v));
  std::sort(versions_.begin(), versions_.end(),
            [](const Version& a, const Version& b) { return b < a; });
  return *this;
}

PackageRecipe& PackageRecipe::variant(VariantDef def) {
  variants_.push_back(std::move(def));
  return *this;
}

PackageRecipe& PackageRecipe::dependsOn(std::string_view specText,
                                        DepKind kind) {
  dependencies_.push_back(DependencyDef{Spec::parse(specText), kind, {}});
  return *this;
}

PackageRecipe& PackageRecipe::dependsOnWhen(std::string_view specText,
                                            std::string variantName,
                                            VariantValue value, DepKind kind) {
  dependencies_.push_back(
      DependencyDef{Spec::parse(specText), kind,
                    std::make_pair(std::move(variantName), std::move(value))});
  return *this;
}

PackageRecipe& PackageRecipe::provides(std::string virtualName) {
  provides_.push_back(std::move(virtualName));
  return *this;
}

PackageRecipe& PackageRecipe::conflictsWith(std::string_view specText,
                                            std::string reason) {
  conflicts_.push_back(ConflictDef{Spec::parse(specText), std::move(reason)});
  return *this;
}

std::optional<Version> PackageRecipe::bestVersion(
    const VersionConstraint& c) const {
  for (const Version& v : versions_) {  // descending: first hit is best
    if (c.satisfiedBy(v)) return v;
  }
  return std::nullopt;
}

const VariantDef* PackageRecipe::findVariant(
    std::string_view variantName) const {
  for (const VariantDef& def : variants_) {
    if (def.name == variantName) return &def;
  }
  return nullptr;
}

void PackageRepository::add(PackageRecipe recipe) {
  const std::string name = recipe.name();
  for (const std::string& v : recipe.providedVirtuals()) {
    providers_[v].push_back(name);
  }
  recipes_.insert_or_assign(name, std::move(recipe));
}

bool PackageRepository::has(std::string_view name) const {
  return recipes_.find(name) != recipes_.end();
}

const PackageRecipe& PackageRepository::get(std::string_view name) const {
  auto it = recipes_.find(name);
  if (it == recipes_.end()) {
    throw NotFoundError("no recipe for package '" + std::string(name) + "'");
  }
  return it->second;
}

bool PackageRepository::isVirtual(std::string_view name) const {
  return providers_.find(name) != providers_.end();
}

std::vector<std::string> PackageRepository::providersOf(
    std::string_view virtualName) const {
  auto it = providers_.find(virtualName);
  if (it == providers_.end()) return {};
  return it->second;
}

std::vector<const PackageRecipe*> PackageRepository::allRecipes() const {
  std::vector<const PackageRecipe*> out;
  out.reserve(recipes_.size());
  for (const auto& [name, recipe] : recipes_) out.push_back(&recipe);
  return out;
}

PackageRepository mergeRepositories(const PackageRepository& upstream,
                                    const PackageRepository& local) {
  PackageRepository merged;
  for (const PackageRecipe* recipe : upstream.allRecipes()) {
    if (!local.has(recipe->name())) merged.add(*recipe);
  }
  for (const PackageRecipe* recipe : local.allRecipes()) {
    merged.add(*recipe);
  }
  return merged;
}

std::vector<std::string> PackageRepository::packageNames() const {
  std::vector<std::string> out;
  out.reserve(recipes_.size());
  for (const auto& [name, recipe] : recipes_) out.push_back(name);
  return out;
}

}  // namespace rebench
