// Build planning and execution records (Principles 2, 3 and 4).
//
// A BuildPlan is the topologically-ordered list of package builds implied by
// a concretized spec.  Executing the plan produces a BuildRecord whose hash
// chain proves *which* binary a benchmark ran: rebuilding on every run
// (Principle 3) makes drift between "the binary we measured" and "the steps
// we documented" detectable instead of silent.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/spec/spec.hpp"

namespace rebench {

namespace store {
class BuildCache;
}  // namespace store

/// One package build in dependency order.
struct BuildStep {
  std::string packageName;
  std::string specShortForm;
  std::string specHash;
  bool external = false;  // externals are loaded, not built
  /// The reproducible command this step corresponds to.
  std::string command;
};

struct BuildPlan {
  std::string rootSpec;        // short form of the root
  std::string rootHash;        // DAG hash of the root
  std::vector<BuildStep> steps;  // dependencies strictly before dependents

  /// Stable fingerprint over all steps.
  std::string planHash() const;

  /// Renders a shell-script-like document a human could replay (P4).
  std::string renderScript() const;
};

/// Derives the plan for a concretized root spec.
BuildPlan makeBuildPlan(const ConcreteSpec& root);

/// Outcome of executing a BuildPlan.
struct BuildRecord {
  std::string rootHash;
  std::string planHash;
  /// Identity of the produced binary == hash(plan, toolchain).  Two builds
  /// agree on binaryId iff the reproduction steps were identical.
  std::string binaryId;
  double buildSeconds = 0.0;  // simulated cost
  int stepsExecuted = 0;
  int stepsReusedFromCache = 0;
};

/// Executes build plans.  `rebuildEveryRun` mirrors Principle 3; turning it
/// off enables the paper's implicit counterfactual (stale-binary drift),
/// which bench/ablation_rebuild quantifies.
class Builder {
 public:
  explicit Builder(bool rebuildEveryRun = true)
      : rebuildEveryRun_(rebuildEveryRun) {}

  BuildRecord build(const BuildPlan& plan);

  /// Store-backed variant: consults `cache` (verified, provenance-keyed
  /// on spec DAG + environment fingerprint + plan hash) before executing;
  /// a hit is reused with zero build cost, a miss builds and inserts.
  /// With a null cache this is plain build().  Unlike rebuildEveryRun =
  /// false, reuse here is *verified* — any spec/environment/recipe drift
  /// changes the key and forces a rebuild — so Principle 3's invariant
  /// survives the optimisation.
  BuildRecord build(const BuildPlan& plan, store::BuildCache* cache,
                    const std::string& envFingerprint);

  /// Number of distinct binaries this builder has ever produced.
  std::size_t cacheSize() const {
    std::lock_guard lock(mutex_);
    return cache_.size();
  }

 private:
  bool rebuildEveryRun_;
  // One builder is shared by all concurrent campaign workers.
  mutable std::mutex mutex_;
  std::map<std::string, BuildRecord> cache_;  // planHash -> record
};

/// Deterministic simulated cost of building one package (seconds).
double simulatedBuildCost(const BuildStep& step);

}  // namespace rebench
