#include "core/pkg/build_plan.hpp"

#include <set>

#include "core/store/build_cache.hpp"
#include "core/util/hash.hpp"
#include "core/util/rng.hpp"

namespace rebench {

namespace {

void appendSteps(const ConcreteSpec& node, std::set<std::string>& seen,
                 std::vector<BuildStep>& steps) {
  if (seen.contains(node.dagHash())) return;
  seen.insert(node.dagHash());
  for (const auto& [name, dep] : node.dependencies) {
    appendSteps(*dep, seen, steps);
  }
  BuildStep step;
  step.packageName = node.name;
  step.specShortForm = node.shortForm();
  step.specHash = node.dagHash();
  step.external = node.external;
  step.command = node.external
                     ? "module load " + node.externalOrigin
                     : "spack install --reuse " + node.shortForm();
  steps.push_back(std::move(step));
}

}  // namespace

std::string BuildPlan::planHash() const {
  Hasher h;
  h.update(rootHash);
  for (const BuildStep& step : steps) {
    h.update(step.specHash).update(step.command);
  }
  return h.hex();
}

std::string BuildPlan::renderScript() const {
  std::string out = "# reproducible build of " + rootSpec + "\n";
  out += "# dag hash: " + rootHash + "\n";
  for (const BuildStep& step : steps) {
    out += step.command + "   # " + step.specShortForm + "\n";
  }
  return out;
}

BuildPlan makeBuildPlan(const ConcreteSpec& root) {
  BuildPlan plan;
  plan.rootSpec = root.shortForm();
  plan.rootHash = root.dagHash();
  std::set<std::string> seen;
  appendSteps(root, seen, plan.steps);
  return plan;
}

double simulatedBuildCost(const BuildStep& step) {
  if (step.external) return 0.05;  // "module load" is near-free
  // Deterministic per-package cost in [10, 130) seconds of simulated time.
  Rng rng = Rng::fromKey("build-cost:" + step.specHash);
  return 10.0 + 120.0 * rng.uniform();
}

BuildRecord Builder::build(const BuildPlan& plan) {
  const std::string key = plan.planHash();
  if (!rebuildEveryRun_) {
    std::lock_guard lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      BuildRecord cached = it->second;
      cached.stepsExecuted = 0;
      cached.stepsReusedFromCache = static_cast<int>(plan.steps.size());
      cached.buildSeconds = 0.0;
      return cached;
    }
  }
  BuildRecord record;
  record.rootHash = plan.rootHash;
  record.planHash = key;
  double total = 0.0;
  for (const BuildStep& step : plan.steps) {
    total += simulatedBuildCost(step);
    ++record.stepsExecuted;
  }
  record.buildSeconds = total;
  record.binaryId = Hasher{}.update("binary").update(key).hex();
  {
    std::lock_guard lock(mutex_);
    cache_[key] = record;
  }
  return record;
}

BuildRecord Builder::build(const BuildPlan& plan, store::BuildCache* cache,
                           const std::string& envFingerprint) {
  if (cache == nullptr) return build(plan);
  const std::string key = store::BuildCache::cacheKey(
      plan.rootHash, envFingerprint, plan.planHash());
  if (std::optional<BuildRecord> hit = cache->lookup(key, plan)) {
    return *hit;
  }
  BuildRecord record = build(plan);
  cache->insert(key, record);
  return record;
}

}  // namespace rebench
