// Package recipes — the unit of "Wisdom of the Crowd" knowledge capture
// (Principle 2).  A recipe records, per package: the versions that exist,
// the variants it can be built with, its (possibly conditional) dependency
// constraints, and which virtual interfaces it provides (e.g. "mpi").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/spec/spec.hpp"
#include "core/util/version.hpp"

namespace rebench {

/// A variant a package can be built with.
struct VariantDef {
  std::string name;
  VariantValue defaultValue;
  /// Allowed values for string variants; empty means unrestricted.
  std::vector<std::string> allowedValues;
  std::string description;
};

/// Dependency edge classification, mirroring Spack's deptypes.
enum class DepKind { kBuild, kLink, kRun };

/// A declared incompatibility: the package cannot be concretized when the
/// (partially concretized) node satisfies `when` — Spack's conflicts().
struct ConflictDef {
  Spec when;
  std::string reason;
};

/// A conditional dependency: `spec` applies when `when` (a variant
/// name/value pair) holds on the dependent — or unconditionally.
struct DependencyDef {
  Spec spec;
  DepKind kind = DepKind::kLink;
  std::optional<std::pair<std::string, VariantValue>> when;
};

/// Immutable description of how to build one package.
class PackageRecipe {
 public:
  explicit PackageRecipe(std::string name) : name_(std::move(name)) {}

  PackageRecipe& describe(std::string text);
  /// Declares an available version; recipes keep them sorted descending.
  PackageRecipe& version(std::string_view v);
  PackageRecipe& variant(VariantDef def);
  PackageRecipe& dependsOn(std::string_view specText,
                           DepKind kind = DepKind::kLink);
  PackageRecipe& dependsOnWhen(std::string_view specText, std::string variant,
                               VariantValue value,
                               DepKind kind = DepKind::kLink);
  /// Declares that this package implements a virtual interface.
  PackageRecipe& provides(std::string virtualName);
  /// Declares an incompatibility (Spack's conflicts("spec", msg=...)).
  PackageRecipe& conflictsWith(std::string_view specText,
                               std::string reason);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const std::vector<Version>& versions() const { return versions_; }
  const std::vector<VariantDef>& variants() const { return variants_; }
  const std::vector<DependencyDef>& dependencies() const {
    return dependencies_;
  }
  const std::vector<std::string>& providedVirtuals() const {
    return provides_;
  }
  const std::vector<ConflictDef>& conflicts() const { return conflicts_; }

  /// Highest declared version satisfying `c`; nullopt when none does.
  std::optional<Version> bestVersion(const VersionConstraint& c) const;

  /// The variant definition by name, or nullptr.
  const VariantDef* findVariant(std::string_view variantName) const;

 private:
  std::string name_;
  std::string description_;
  std::vector<Version> versions_;  // sorted descending
  std::vector<VariantDef> variants_;
  std::vector<DependencyDef> dependencies_;
  std::vector<std::string> provides_;
  std::vector<ConflictDef> conflicts_;
};

/// Named collection of recipes plus the virtual→providers index.
class PackageRepository {
 public:
  void add(PackageRecipe recipe);

  bool has(std::string_view name) const;
  /// Throws NotFoundError for unknown packages.
  const PackageRecipe& get(std::string_view name) const;

  bool isVirtual(std::string_view name) const;
  /// Package names providing a virtual, in registration order.
  std::vector<std::string> providersOf(std::string_view virtualName) const;

  std::vector<std::string> packageNames() const;
  std::size_t size() const { return recipes_.size(); }
  /// Every recipe, for merging (registration order not preserved).
  std::vector<const PackageRecipe*> allRecipes() const;

 private:
  std::map<std::string, PackageRecipe, std::less<>> recipes_;
  std::map<std::string, std::vector<std::string>, std::less<>> providers_;
};

/// The repository of recipes shipped with rebench: compilers, MPI
/// implementations, tools and the benchmark applications used in the paper.
PackageRepository builtinRepository();

/// Layers `local` over `upstream` (§2.2: "we keep a local repository of
/// recipes for building applications not generally relevant for upstream
/// Spack").  Local recipes shadow upstream ones of the same name.
PackageRepository mergeRepositories(const PackageRepository& upstream,
                                    const PackageRepository& local);

}  // namespace rebench
