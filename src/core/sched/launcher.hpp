// Parallel launcher abstraction (srun/mpirun/aprun stand-ins).
//
// Given a scheduler allocation, a launcher decides the rank→(node, cpus)
// layout and renders the exact command line that reproduces the run
// (Principle 5: the run procedure is captured, not remembered).
#pragma once

#include <string>
#include <vector>

#include "core/sched/scheduler.hpp"
#include "core/sysconfig/system_config.hpp"

namespace rebench {

/// Placement of one MPI rank.
struct RankPlacement {
  int rank = 0;
  int nodeId = 0;
  int firstCpu = 0;  // first logical CPU of the rank's affinity set
  int numCpus = 1;
};

/// Block-distributed rank layout for an allocation.
std::vector<RankPlacement> computeRankLayout(const Allocation& alloc);

/// Renders the launcher command ReFrame would have emitted for this
/// allocation on a partition ("srun --ntasks=8 --ntasks-per-node=2 ...").
std::string renderLaunchCommand(LauncherKind launcher,
                                const Allocation& alloc,
                                const std::string& executable,
                                const std::vector<std::string>& args);

std::string_view launcherName(LauncherKind launcher);
std::string_view schedulerName(SchedulerKind scheduler);

/// Renders the batch script the framework would submit on this partition
/// (#SBATCH / #PBS headers + module loads + the launch line) — the
/// Principle-5 artefact: the run procedure as a replayable document.
struct JobScriptRequest {
  std::string jobName;
  int numTasks = 1;
  int tasksPerNode = 1;
  int cpusPerTask = 1;
  double timeLimitSeconds = 3600.0;
  std::string account;
  std::string qos = "standard";
  std::vector<std::string> moduleLoads;  // from the build plan's externals
  std::string launchCommand;
};
std::string renderJobScript(const PartitionConfig& partition,
                            const JobScriptRequest& request);

}  // namespace rebench
