#include "core/sched/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "core/obs/trace.hpp"
#include "core/util/error.hpp"

namespace rebench {

std::string_view jobStateName(JobState s) {
  switch (s) {
    case JobState::kPending: return "PENDING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleted: return "COMPLETED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kNodeFail: return "NODE_FAIL";
  }
  return "UNKNOWN";
}

SchedulerSim::SchedulerSim(ClusterOptions options)
    : options_(std::move(options)) {
  REBENCH_REQUIRE(options_.numNodes > 0 && options_.coresPerNode > 0);
  nodes_.resize(options_.numNodes);
  for (Node& node : nodes_) node.freeCores = options_.coresPerNode;
}

void SchedulerSim::setObservability(obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics,
                                    double traceTimeBase) {
  tracer_ = tracer;
  metrics_ = metrics;
  traceTimeBase_ = traceTimeBase;
}

void SchedulerSim::noteQueueDepth() {
  if (metrics_ != nullptr) {
    metrics_->gauge("sched.queue_depth")
        .set(static_cast<double>(pendingQueue_.size()));
  }
}

JobId SchedulerSim::submit(JobRequest request) {
  if (options_.requireAccount && request.account.empty()) {
    throw SchedulerError(
        "sbatch: error: Batch job submission failed: "
        "Invalid account or account/partition combination specified");
  }
  if (!options_.validQos.empty() &&
      std::find(options_.validQos.begin(), options_.validQos.end(),
                request.qos) == options_.validQos.end()) {
    throw SchedulerError("sbatch: error: Invalid qos specification: " +
                         request.qos);
  }
  if (request.numTasks <= 0 || request.numCpusPerTask <= 0 ||
      request.numTasksPerNode < 0) {
    throw SchedulerError("invalid geometry for job '" + request.name + "'");
  }
  int tasksPerNode = request.numTasksPerNode;
  if (tasksPerNode == 0) {
    tasksPerNode =
        std::max(1, options_.coresPerNode / request.numCpusPerTask);
  }
  if (tasksPerNode * request.numCpusPerTask > options_.coresPerNode) {
    throw SchedulerError(
        "job '" + request.name + "' needs " +
        std::to_string(tasksPerNode * request.numCpusPerTask) +
        " cores per node but nodes have " +
        std::to_string(options_.coresPerNode));
  }
  const int nodesNeeded =
      (request.numTasks + tasksPerNode - 1) / tasksPerNode;
  if (nodesNeeded > options_.numNodes) {
    throw SchedulerError("job '" + request.name + "' needs " +
                         std::to_string(nodesNeeded) +
                         " nodes but the partition has " +
                         std::to_string(options_.numNodes));
  }
  if (!request.payload) {
    throw SchedulerError("job '" + request.name + "' has no payload");
  }

  JobInfo job;
  job.id = jobs_.size() + 1;
  job.name = request.name;
  job.account = request.account;
  job.qos = request.qos;
  job.submitTime = now_;
  job.allocation.numTasks = request.numTasks;
  job.allocation.tasksPerNode = tasksPerNode;
  job.allocation.cpusPerTask = request.numCpusPerTask;
  job.reason = "Priority";
  jobs_.push_back(std::move(job));
  requests_.push_back(std::move(request));
  pendingQueue_.push_back(jobs_.back().id);
  if (metrics_ != nullptr) metrics_->counter("sched.submitted").inc();
  noteQueueDepth();
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + now_, "sched.submit",
                     {{"job", std::to_string(jobs_.back().id)},
                      {"name", jobs_.back().name}});
  }
  return jobs_.back().id;
}

JobInfo& SchedulerSim::jobAt(JobId id) {
  if (id == 0 || id > jobs_.size()) {
    throw SchedulerError("unknown job id " + std::to_string(id));
  }
  return jobs_[id - 1];
}

void SchedulerSim::cancel(JobId id) {
  JobInfo& job = jobAt(id);
  if (job.state == JobState::kPending) {
    pendingQueue_.erase(
        std::remove(pendingQueue_.begin(), pendingQueue_.end(), id),
        pendingQueue_.end());
    job.state = JobState::kCancelled;
    job.endTime = now_;
    noteQueueDepth();
  } else if (job.state == JobState::kRunning) {
    releaseNodes(job);
    endEvents_.erase(id);
    faultEvents_.erase(id);
    job.state = JobState::kCancelled;
    job.endTime = now_;
  } else {
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + now_, "sched.finish",
                     {{"job", std::to_string(id)},
                      {"state", std::string(jobStateName(job.state))}});
  }
}

bool SchedulerSim::tryStart(JobInfo& job) {
  const int coresPerNodeNeeded =
      job.allocation.tasksPerNode * job.allocation.cpusPerTask;
  const int nodesNeeded =
      (job.allocation.numTasks + job.allocation.tasksPerNode - 1) /
      job.allocation.tasksPerNode;
  std::vector<int> chosen;
  for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
    if (!nodes_[i].down && nodes_[i].freeCores >= coresPerNodeNeeded) {
      chosen.push_back(i);
      if (static_cast<int>(chosen.size()) == nodesNeeded) break;
    }
  }
  if (static_cast<int>(chosen.size()) < nodesNeeded) {
    job.reason = "Resources";
    return false;
  }
  for (int nodeId : chosen) nodes_[nodeId].freeCores -= coresPerNodeNeeded;
  job.allocation.nodeIds = std::move(chosen);
  job.state = JobState::kRunning;
  job.startTime = now_;
  job.reason.clear();
  if (metrics_ != nullptr) {
    metrics_->counter("sched.started").inc();
    metrics_->histogram("sched.wait_seconds", obs::stageSecondsBounds())
        .observe(job.startTime - job.submitTime);
  }
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + now_, "sched.start",
                     {{"job", std::to_string(job.id)},
                      {"nodes", std::to_string(job.allocation.nodeIds.size())}});
  }

  const JobRequest& request = requests_[job.id - 1];
  job.outcome = request.payload(job.allocation);
  const double runtime = std::max(0.0, job.outcome.runtimeSeconds);
  const bool timedOut = runtime > request.timeLimit;
  const double wall = timedOut ? request.timeLimit : runtime;
  endEvents_[job.id] = now_ + wall;
  if (timedOut) {
    job.outcome.success = false;
    job.reason = "TimeLimit";
  }
  // Injected faults strike the first execution only: a requeued job has
  // already consumed its fault, and a node-failed job never restarts.
  if (request.fault && job.requeues == 0) {
    const double frac =
        std::clamp(request.fault->atFraction, 0.01, 0.99);
    faultEvents_[job.id] = now_ + frac * wall;
  }
  return true;
}

void SchedulerSim::releaseNodes(const JobInfo& job) {
  const int coresPerNodeNeeded =
      job.allocation.tasksPerNode * job.allocation.cpusPerTask;
  for (int nodeId : job.allocation.nodeIds) {
    nodes_[nodeId].freeCores += coresPerNodeNeeded;
    REBENCH_REQUIRE(nodes_[nodeId].freeCores <= options_.coresPerNode);
  }
}

void SchedulerSim::failNodes(JobInfo& job, double failTime) {
  // The node takes the job down with it and stays drained: no release,
  // no restart.  A real scheduler would set the node DOWN/DRAIN.
  for (int nodeId : job.allocation.nodeIds) {
    nodes_[nodeId].freeCores = 0;
    nodes_[nodeId].down = true;
  }
  job.state = JobState::kNodeFail;
  job.endTime = failTime;
  job.reason = "NodeFail";
  job.outcome.success = false;
  if (metrics_ != nullptr) {
    metrics_->counter("sched.node_failures").inc();
  }
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + failTime, "sched.node_fail",
                     {{"job", std::to_string(job.id)},
                      {"nodes", std::to_string(job.allocation.nodeIds.size())}});
    tracer_->eventAt(traceTimeBase_ + failTime, "sched.finish",
                     {{"job", std::to_string(job.id)},
                      {"state", std::string(jobStateName(job.state))}});
  }
}

void SchedulerSim::preempt(JobInfo& job, double preemptTime) {
  releaseNodes(job);
  job.state = JobState::kPending;
  job.startTime = -1.0;
  job.reason = "Preempted";
  ++job.requeues;
  pendingQueue_.push_back(job.id);
  noteQueueDepth();
  if (metrics_ != nullptr) {
    metrics_->counter("sched.preemptions").inc();
  }
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + preemptTime, "sched.preempt",
                     {{"job", std::to_string(job.id)},
                      {"requeues", std::to_string(job.requeues)}});
  }
}

void SchedulerSim::finish(JobInfo& job, double endTime) {
  releaseNodes(job);
  job.endTime = endTime;
  if (job.reason == "TimeLimit") {
    job.state = JobState::kTimeout;
  } else {
    job.state = job.outcome.success ? JobState::kCompleted : JobState::kFailed;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter(job.state == JobState::kCompleted ? "sched.completed"
                                                    : "sched.failed")
        .inc();
  }
  if (tracer_ != nullptr) {
    tracer_->eventAt(traceTimeBase_ + endTime, "sched.finish",
                     {{"job", std::to_string(job.id)},
                      {"state", std::string(jobStateName(job.state))}});
  }
}

void SchedulerSim::scheduleLoop() {
  // FIFO with conservative backfill: walk the queue in order and start
  // anything that fits right now.  (With homogeneous jobs this is exactly
  // FIFO; with mixed sizes small jobs may backfill around a blocked head.)
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = pendingQueue_.begin(); it != pendingQueue_.end();) {
      JobInfo& job = jobs_[*it - 1];
      if (now_ - job.submitTime < options_.schedulingLatency) {
        ++it;
        continue;
      }
      if (tryStart(job)) {
        it = pendingQueue_.erase(it);
        noteQueueDepth();
        progressed = true;
      } else {
        ++it;
      }
    }
  }
}

std::optional<double> SchedulerSim::nextEventTime() const {
  std::optional<double> next;
  for (const auto& [id, end] : endEvents_) {
    if (!next || end < *next) next = end;
  }
  for (const auto& [id, strike] : faultEvents_) {
    if (!next || strike < *next) next = strike;
  }
  for (JobId id : pendingQueue_) {
    const double eligible =
        jobs_[id - 1].submitTime + options_.schedulingLatency;
    if (eligible > now_ && (!next || eligible < *next)) next = eligible;
  }
  return next;
}

void SchedulerSim::processEventsAt(double time) {
  // Faults strike strictly before (or, for zero-length jobs, at) the
  // completion they pre-empt, so they are processed first; a struck job's
  // completion event is discarded.
  std::vector<JobId> struck;
  for (const auto& [id, strike] : faultEvents_) {
    if (strike <= time) struck.push_back(id);
  }
  for (JobId id : struck) {
    const double strike = faultEvents_.at(id);
    faultEvents_.erase(id);
    endEvents_.erase(id);
    JobInfo& job = jobs_[id - 1];
    const InjectedJobFault& fault = *requests_[id - 1].fault;
    if (fault.kind == InjectedJobFault::Kind::kNodeFailure) {
      failNodes(job, strike);
    } else {
      preempt(job, strike);
    }
  }
  std::vector<JobId> done;
  for (const auto& [id, end] : endEvents_) {
    if (end <= time) done.push_back(id);
  }
  for (JobId id : done) {
    const double end = endEvents_.at(id);
    endEvents_.erase(id);
    finish(jobs_[id - 1], end);
  }
}

void SchedulerSim::drain() {
  scheduleLoop();
  while (!endEvents_.empty() || !pendingQueue_.empty()) {
    auto next = nextEventTime();
    if (!next) {
      // Pending jobs that can never start (should have been rejected at
      // submit); mark them failed to guarantee termination.
      for (JobId id : pendingQueue_) {
        jobs_[id - 1].state = JobState::kFailed;
        jobs_[id - 1].reason = "Unschedulable";
        jobs_[id - 1].endTime = now_;
      }
      pendingQueue_.clear();
      return;
    }
    now_ = std::max(now_, *next);
    processEventsAt(now_);
    scheduleLoop();
  }
}

void SchedulerSim::advance(double seconds) {
  const double deadline = now_ + seconds;
  scheduleLoop();
  while (true) {
    auto next = nextEventTime();
    if (!next || *next > deadline) break;
    now_ = *next;
    processEventsAt(now_);
    scheduleLoop();
  }
  now_ = deadline;
}

const JobInfo& SchedulerSim::query(JobId id) const {
  if (id == 0 || id > jobs_.size()) {
    throw SchedulerError("unknown job id " + std::to_string(id));
  }
  return jobs_[id - 1];
}

std::map<std::string, double> SchedulerSim::accountingCoreSeconds() const {
  std::map<std::string, double> usage;
  for (const JobInfo& job : jobs_) {
    if (job.startTime < 0.0 || job.endTime < 0.0) continue;
    const double wall = job.endTime - job.startTime;
    const double cores =
        static_cast<double>(job.allocation.nodeIds.size()) *
        job.allocation.tasksPerNode * job.allocation.cpusPerTask;
    usage[job.account.empty() ? "(none)" : job.account] += wall * cores;
  }
  return usage;
}

int SchedulerSim::idleCores() const {
  int total = 0;
  for (const Node& node : nodes_) total += node.freeCores;
  return total;
}

int SchedulerSim::downNodes() const {
  int total = 0;
  for (const Node& node : nodes_) total += node.down ? 1 : 0;
  return total;
}

}  // namespace rebench
