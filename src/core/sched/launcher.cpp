#include "core/sched/launcher.hpp"

#include "core/util/error.hpp"

namespace rebench {

std::vector<RankPlacement> computeRankLayout(const Allocation& alloc) {
  REBENCH_REQUIRE(alloc.tasksPerNode > 0 && alloc.cpusPerTask > 0);
  std::vector<RankPlacement> layout;
  layout.reserve(alloc.numTasks);
  for (int rank = 0; rank < alloc.numTasks; ++rank) {
    const int nodeIndex = rank / alloc.tasksPerNode;
    const int slot = rank % alloc.tasksPerNode;
    RankPlacement placement;
    placement.rank = rank;
    placement.nodeId = nodeIndex < static_cast<int>(alloc.nodeIds.size())
                           ? alloc.nodeIds[nodeIndex]
                           : nodeIndex;
    placement.firstCpu = slot * alloc.cpusPerTask;
    placement.numCpus = alloc.cpusPerTask;
    layout.push_back(placement);
  }
  return layout;
}

std::string_view launcherName(LauncherKind launcher) {
  switch (launcher) {
    case LauncherKind::kLocal: return "local";
    case LauncherKind::kSrun: return "srun";
    case LauncherKind::kMpirun: return "mpirun";
    case LauncherKind::kAprun: return "aprun";
  }
  return "unknown";
}

std::string_view schedulerName(SchedulerKind scheduler) {
  switch (scheduler) {
    case SchedulerKind::kLocal: return "local";
    case SchedulerKind::kSlurm: return "slurm";
    case SchedulerKind::kPbs: return "pbs";
  }
  return "unknown";
}

std::string renderLaunchCommand(LauncherKind launcher,
                                const Allocation& alloc,
                                const std::string& executable,
                                const std::vector<std::string>& args) {
  std::string cmd;
  switch (launcher) {
    case LauncherKind::kLocal:
      cmd = executable;
      break;
    case LauncherKind::kSrun:
      cmd = "srun --ntasks=" + std::to_string(alloc.numTasks) +
            " --ntasks-per-node=" + std::to_string(alloc.tasksPerNode) +
            " --cpus-per-task=" + std::to_string(alloc.cpusPerTask) + " " +
            executable;
      break;
    case LauncherKind::kMpirun:
      cmd = "mpirun -np " + std::to_string(alloc.numTasks) + " --map-by ppr:" +
            std::to_string(alloc.tasksPerNode) + ":node:pe=" +
            std::to_string(alloc.cpusPerTask) + " " + executable;
      break;
    case LauncherKind::kAprun:
      cmd = "aprun -n " + std::to_string(alloc.numTasks) + " -N " +
            std::to_string(alloc.tasksPerNode) + " -d " +
            std::to_string(alloc.cpusPerTask) + " " + executable;
      break;
  }
  for (const std::string& arg : args) {
    cmd += " " + arg;
  }
  return cmd;
}

namespace {

std::string formatWalltime(double seconds) {
  const int total = static_cast<int>(seconds);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", total / 3600,
                (total / 60) % 60, total % 60);
  return buf;
}

}  // namespace

std::string renderJobScript(const PartitionConfig& partition,
                            const JobScriptRequest& request) {
  std::string out = "#!/bin/bash\n";
  const int nodes =
      (request.numTasks + request.tasksPerNode - 1) / request.tasksPerNode;
  switch (partition.scheduler) {
    case SchedulerKind::kSlurm:
      out += "#SBATCH --job-name=" + request.jobName + "\n";
      out += "#SBATCH --nodes=" + std::to_string(nodes) + "\n";
      out += "#SBATCH --ntasks=" + std::to_string(request.numTasks) + "\n";
      out += "#SBATCH --ntasks-per-node=" +
             std::to_string(request.tasksPerNode) + "\n";
      out += "#SBATCH --cpus-per-task=" +
             std::to_string(request.cpusPerTask) + "\n";
      out += "#SBATCH --time=" + formatWalltime(request.timeLimitSeconds) +
             "\n";
      out += "#SBATCH --partition=" + partition.name + "\n";
      if (!request.account.empty()) {
        out += "#SBATCH --account=" + request.account + "\n";
      }
      if (!request.qos.empty()) {
        out += "#SBATCH --qos=" + request.qos + "\n";
      }
      break;
    case SchedulerKind::kPbs:
      out += "#PBS -N " + request.jobName + "\n";
      out += "#PBS -l select=" + std::to_string(nodes) + ":mpiprocs=" +
             std::to_string(request.tasksPerNode) + ":ncpus=" +
             std::to_string(request.tasksPerNode * request.cpusPerTask) +
             "\n";
      out += "#PBS -l walltime=" + formatWalltime(request.timeLimitSeconds) +
             "\n";
      out += "#PBS -q " + partition.name + "\n";
      if (!request.account.empty()) {
        out += "#PBS -A " + request.account + "\n";
      }
      break;
    case SchedulerKind::kLocal:
      out += "# local execution (no scheduler)\n";
      break;
  }
  out += "\n";
  for (const std::string& module : request.moduleLoads) {
    out += "module load " + module + "\n";
  }
  if (!request.moduleLoads.empty()) out += "\n";
  out += request.launchCommand + "\n";
  return out;
}

}  // namespace rebench
