// Discrete-event job-scheduler simulation (SLURM/PBS stand-in).
//
// The benchmarking framework of the paper drives real SLURM/PBS through
// ReFrame; here the identical submission surface (tasks / tasks-per-node /
// cpus-per-task, qos, account, time limits) is exercised against a
// simulated cluster.  Jobs carry a payload functor that is invoked when the
// job starts; the payload reports its *simulated* runtime and stdout, and
// the scheduler schedules the completion event accordingly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rebench {

namespace obs {
class Tracer;
class MetricsRegistry;
}  // namespace obs

using JobId = std::uint64_t;

/// Where a started job's tasks were placed.
struct Allocation {
  std::vector<int> nodeIds;  // one entry per allocated node
  int numTasks = 1;
  int tasksPerNode = 1;
  int cpusPerTask = 1;
};

/// What a payload reports back.
struct JobOutcome {
  bool success = true;
  double runtimeSeconds = 0.0;  // simulated wall-clock of the job itself
  std::string stdoutText;
};

/// A scheduler-level fault injected into one job (rebench::fault drives
/// this deterministically; the scheduler just executes the script).  The
/// fault strikes once, at `atFraction` of the job's first execution.
struct InjectedJobFault {
  enum class Kind {
    /// The node(s) running the job die: the job ends NODE_FAIL and the
    /// nodes are drained (removed from capacity) for the rest of this
    /// scheduler instance's lifetime.
    kNodeFailure,
    /// The job is preempted and requeued; it reruns from the start.
    kPreemption,
  };
  Kind kind = Kind::kNodeFailure;
  double atFraction = 0.5;  // clamped to (0, 1)
};

struct JobRequest {
  std::string name;
  int numTasks = 1;
  /// 0 means "pack as many as fit per node".
  int numTasksPerNode = 0;
  int numCpusPerTask = 1;
  double timeLimit = 3600.0;
  std::string qos = "standard";
  std::string account;
  std::function<JobOutcome(const Allocation&)> payload;
  /// Optional injected fault (applies to the first execution only).
  std::optional<InjectedJobFault> fault;
};

enum class JobState {
  kPending,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
  kTimeout,
  kNodeFail,
};

std::string_view jobStateName(JobState s);

struct JobInfo {
  JobId id = 0;
  std::string name;
  std::string account;
  std::string qos;
  JobState state = JobState::kPending;
  double submitTime = 0.0;
  double startTime = -1.0;
  double endTime = -1.0;
  Allocation allocation;
  JobOutcome outcome;
  /// Human-readable pending/failure reason (e.g. "Resources").
  std::string reason;
  /// Times this job was preempted and requeued.
  int requeues = 0;
};

/// Simulated-cluster shape and policy.
struct ClusterOptions {
  int numNodes = 4;
  int coresPerNode = 16;
  bool requireAccount = false;
  std::vector<std::string> validQos = {"standard"};
  /// Seconds of scheduler latency between submission and earliest start.
  double schedulingLatency = 1.0;
};

/// FIFO + conservative backfill scheduler over a homogeneous cluster.
class SchedulerSim {
 public:
  explicit SchedulerSim(ClusterOptions options);

  /// Attaches observability hooks (both nullable).  Job lifecycle
  /// transitions are emitted as `sched.submit`/`sched.start`/
  /// `sched.finish` trace events stamped `traceTimeBase + now()` (the
  /// scheduler's timeline starts at zero per instance; the base aligns it
  /// with the caller's trace clock), and queue depth / wait times are
  /// recorded in the registry.
  void setObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics,
                        double traceTimeBase = 0.0);

  /// Validates the request (account/qos/size) and enqueues it.
  /// Throws SchedulerError for requests the real scheduler would reject.
  JobId submit(JobRequest request);

  /// Cancels a pending or running job.
  void cancel(JobId id);

  /// Advances simulated time until all submitted jobs reach a final state.
  void drain();

  /// Advances simulated time by at most `seconds`.
  void advance(double seconds);

  const JobInfo& query(JobId id) const;
  double now() const { return now_; }

  /// Total core-seconds consumed per account (sacct-style accounting).
  std::map<std::string, double> accountingCoreSeconds() const;

  int idleCores() const;
  int totalCores() const {
    return options_.numNodes * options_.coresPerNode;
  }
  /// Nodes drained by injected node failures.
  int downNodes() const;

 private:
  struct Node {
    int freeCores = 0;
    bool down = false;
  };

  /// Bounds-checked mutable access; throws SchedulerError on invalid ids.
  JobInfo& jobAt(JobId id);
  bool tryStart(JobInfo& job);
  void finish(JobInfo& job, double endTime);
  void noteQueueDepth();
  void releaseNodes(const JobInfo& job);
  void failNodes(JobInfo& job, double failTime);
  void preempt(JobInfo& job, double preemptTime);
  void scheduleLoop();
  std::optional<double> nextEventTime() const;
  void processEventsAt(double time);

  ClusterOptions options_;
  std::vector<Node> nodes_;
  std::vector<JobInfo> jobs_;          // indexed by JobId - 1
  std::vector<JobRequest> requests_;   // parallel to jobs_
  std::vector<JobId> pendingQueue_;    // FIFO order
  std::map<JobId, double> endEvents_;  // running job -> completion time
  std::map<JobId, double> faultEvents_;  // running job -> fault strike time
  double now_ = 0.0;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  double traceTimeBase_ = 0.0;
};

}  // namespace rebench
