#include "core/store/run_cache.hpp"

#include <filesystem>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"

namespace rebench::store {

std::string RunRecord::serialize() const {
  using obs::json::quote;
  std::ostringstream out;
  out << "{\"schema\":" << quote(kRunCacheSchema) << ",\"key\":" << quote(key)
      << ",\"verdict\":" << quote(verdict)
      << ",\"manifest\":" << quote(manifestHash)
      << ",\"perflog\":" << quote(perflogHash) << ",\"runs\":" << runs
      << ",\"regressions\":" << regressions << "}";
  return out.str();
}

RunRecord RunRecord::parse(const std::string& text) {
  const obs::json::Value value = obs::json::parse(text);
  if (!value.isObject()) throw Error("run-cache record is not an object");
  const std::string schema = value.stringOr("schema", "");
  if (schema != kRunCacheSchema) {
    throw Error("unsupported run-cache schema '" + schema + "'");
  }
  RunRecord record;
  record.key = value.stringOr("key", "");
  record.verdict = value.stringOr("verdict", "");
  record.manifestHash = value.stringOr("manifest", "");
  record.perflogHash = value.stringOr("perflog", "");
  record.runs = static_cast<int>(value.numberOr("runs", 0));
  record.regressions = static_cast<int>(value.numberOr("regressions", 0));
  return record;
}

std::string RunCache::refName(std::string_view key) {
  return "runcache/" + std::string(key);
}

std::string_view RunCache::outcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kHit:
      return "hit";
    case Outcome::kMiss:
      return "miss";
    case Outcome::kCorrupt:
      return "corrupt";
    case Outcome::kStale:
      return "stale";
  }
  return "miss";
}

RunCache::Lookup RunCache::lookup(const std::string& key) {
  Lookup result;
  obs::ScopedSpan span(tracer_, "store.runcache");
  span.attr("key", key);

  const std::optional<std::string> hash = store_.ref(refName(key));
  if (!hash) {
    result.outcome = Outcome::kMiss;
  } else if (std::optional<std::string> bytes = store_.get(*hash); !bytes) {
    // The blob existed in the index but failed verified read (or was
    // evicted): the store already disposed of it.
    result.outcome = Outcome::kCorrupt;
  } else {
    RunRecord record;
    bool parsed = true;
    try {
      record = RunRecord::parse(*bytes);
    } catch (const Error&) {
      parsed = false;
    }
    if (!parsed || record.key != key) {
      result.outcome = Outcome::kCorrupt;
    } else {
      const std::filesystem::path manifestPath =
          std::filesystem::path(store_.dir()) / "manifests" /
          ("campaign-" + record.manifestHash + ".json");
      if (!std::filesystem::exists(manifestPath)) {
        // The record survived but its evidence did not; re-execute.
        result.outcome = Outcome::kStale;
      } else {
        result.outcome = Outcome::kHit;
        result.record = std::move(record);
      }
    }
  }

  switch (result.outcome) {
    case Outcome::kHit:
      ++stats_.hits;
      break;
    case Outcome::kMiss:
      ++stats_.misses;
      break;
    case Outcome::kCorrupt:
      ++stats_.corrupt;
      break;
    case Outcome::kStale:
      ++stats_.stale;
      break;
  }
  const std::string name(outcomeName(result.outcome));
  span.attr("outcome", name);
  if (metrics_ != nullptr) {
    metrics_->counter("store.runcache_" + name).inc();
  }
  return result;
}

void RunCache::insert(const RunRecord& record) {
  const std::string hash = store_.put(record.serialize());
  store_.pin(hash);
  store_.setRef(refName(record.key), hash);
}

}  // namespace rebench::store
