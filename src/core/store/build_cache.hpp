// Provenance-keyed build cache (rebench::store layer 3, build side).
//
// Principle 3 ("rebuild every run") exists so the measured binary can
// never drift from the documented build steps.  The build cache keeps
// that invariant while dropping the cost: a build result may be reused
// *only* on an exact provenance-hash match —
//
//   key = hash(concretized spec DAG ∥ system-environment fingerprint
//              ∥ build-plan/recipe hash)
//
// — so any drift in the spec, the system's modules/compilers, or the
// recipe changes the key and forces a rebuild.  Reuse is verified: the
// stored record is re-read through ObjectStore::get (which re-hashes the
// blob) and its planHash/binaryId are checked against the requesting
// plan; anything inconsistent is treated as a miss.
//
// Lookups emit a `store.lookup` span (`key`, `outcome` attrs) and bump
// the `store.hit`/`store.miss` counters; inserts emit `store.put` events.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/concretizer/environment.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/store/object_store.hpp"

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::store {

/// Single-flight coordination for concurrent builders sharing one cache:
/// the first campaign to need a key becomes its *leader* and builds; the
/// others block in awaitBuilt() until the leader publishes.  A leader that
/// gives up (skipped or crashed) abandons the key instead, which bumps the
/// key's epoch and wakes the waiters with `built == false` so they can
/// re-elect a leader rather than hang.
class SingleFlight {
 public:
  /// Leader succeeded: the key's record is now in the cache.
  void publish(const std::string& key);
  /// Leader gave up without building.  No-op once published.
  void abandon(const std::string& key);

  /// Current abandonment epoch for the key (0 until first abandon).
  std::uint64_t epoch(const std::string& key) const;

  /// Blocks until the key is published (returns true) or its epoch moves
  /// past `epoch` (returns false: the observed leader abandoned;
  /// re-resolve roles and try again).
  bool awaitBuilt(const std::string& key, std::uint64_t epoch) const;

 private:
  struct State {
    bool built = false;
    std::uint64_t epoch = 0;
  };
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::map<std::string, State> states_;
};

class BuildCache {
 public:
  /// `store` must outlive the cache; tracer/metrics are optional hooks.
  explicit BuildCache(ObjectStore& store, obs::Tracer* tracer = nullptr,
                      obs::MetricsRegistry* metrics = nullptr);

  /// The provenance key gating reuse (see file comment).
  static std::string cacheKey(const std::string& dagHash,
                              const std::string& envFingerprint,
                              const std::string& planHash);

  /// Stable fingerprint of a system environment (hash of its rendered
  /// configuration document, so *any* environment edit changes it).
  static std::string environmentFingerprint(const SystemEnvironment& env);

  /// Verified lookup: nullopt on no entry, corrupt blob, or a record
  /// whose provenance does not match `plan`.  The 2-argument form reports
  /// through the cache's own tracer/metrics; the 4-argument form reports
  /// through the caller's (per-campaign shards in the parallel executor).
  std::optional<BuildRecord> lookup(const std::string& key,
                                    const BuildPlan& plan);
  std::optional<BuildRecord> lookup(const std::string& key,
                                    const BuildPlan& plan,
                                    obs::Tracer* tracer,
                                    obs::MetricsRegistry* metrics);

  void insert(const std::string& key, const BuildRecord& record);
  void insert(const std::string& key, const BuildRecord& record,
              obs::Tracer* tracer);

  /// Emits the observability of a forced miss (span outcome "miss",
  /// `store.miss` counter, stats) without probing the store.  The
  /// executor's single-flight leader uses this: it *knows* the key is
  /// cold and must build, and probing would perturb store state.
  void recordMiss(const std::string& key, obs::Tracer* tracer,
                  obs::MetricsRegistry* metrics);

  /// Silent verified lookup: no spans, no counters, no stats, no LRU
  /// touches.  Used by the executor's pre-pass to classify keys as
  /// warm/cold without observable side effects.
  std::optional<BuildRecord> peek(const std::string& key,
                                  const BuildPlan& plan) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t singleFlightDeduped = 0;  // builds avoided by waiting
  };
  Stats stats() const {
    std::lock_guard lock(statsMutex_);
    return stats_;
  }

  /// Credits builds that were avoided because a follower waited on a
  /// single-flight leader instead of rebuilding.
  void noteSingleFlightDeduped(std::uint64_t n);

  ObjectStore& objectStore() { return store_; }

  /// (De)serialization of build records as store blobs; public for tests.
  static std::string serializeRecord(const BuildRecord& record);
  static std::optional<BuildRecord> parseRecord(const std::string& bytes);

 private:
  ObjectStore& store_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex statsMutex_;
  Stats stats_;
};

}  // namespace rebench::store
