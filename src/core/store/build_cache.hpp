// Provenance-keyed build cache (rebench::store layer 3, build side).
//
// Principle 3 ("rebuild every run") exists so the measured binary can
// never drift from the documented build steps.  The build cache keeps
// that invariant while dropping the cost: a build result may be reused
// *only* on an exact provenance-hash match —
//
//   key = hash(concretized spec DAG ∥ system-environment fingerprint
//              ∥ build-plan/recipe hash)
//
// — so any drift in the spec, the system's modules/compilers, or the
// recipe changes the key and forces a rebuild.  Reuse is verified: the
// stored record is re-read through ObjectStore::get (which re-hashes the
// blob) and its planHash/binaryId are checked against the requesting
// plan; anything inconsistent is treated as a miss.
//
// Lookups emit a `store.lookup` span (`key`, `outcome` attrs) and bump
// the `store.hit`/`store.miss` counters; inserts emit `store.put` events.
#pragma once

#include <optional>
#include <string>

#include "core/concretizer/environment.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/store/object_store.hpp"

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::store {

class BuildCache {
 public:
  /// `store` must outlive the cache; tracer/metrics are optional hooks.
  explicit BuildCache(ObjectStore& store, obs::Tracer* tracer = nullptr,
                      obs::MetricsRegistry* metrics = nullptr);

  /// The provenance key gating reuse (see file comment).
  static std::string cacheKey(const std::string& dagHash,
                              const std::string& envFingerprint,
                              const std::string& planHash);

  /// Stable fingerprint of a system environment (hash of its rendered
  /// configuration document, so *any* environment edit changes it).
  static std::string environmentFingerprint(const SystemEnvironment& env);

  /// Verified lookup: nullopt on no entry, corrupt blob, or a record
  /// whose provenance does not match `plan`.
  std::optional<BuildRecord> lookup(const std::string& key,
                                    const BuildPlan& plan);

  void insert(const std::string& key, const BuildRecord& record);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  const Stats& stats() const { return stats_; }

  ObjectStore& objectStore() { return store_; }

  /// (De)serialization of build records as store blobs; public for tests.
  static std::string serializeRecord(const BuildRecord& record);
  static std::optional<BuildRecord> parseRecord(const std::string& bytes);

 private:
  ObjectStore& store_;
  obs::Tracer* tracer_;
  obs::MetricsRegistry* metrics_;
  Stats stats_;
};

}  // namespace rebench::store
