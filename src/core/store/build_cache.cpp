#include "core/store/build_cache.hpp"

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/util/error.hpp"
#include "core/util/hash.hpp"
#include "core/util/strings.hpp"

namespace rebench::store {

void SingleFlight::publish(const std::string& key) {
  {
    std::lock_guard lock(mutex_);
    states_[key].built = true;
  }
  cv_.notify_all();
}

void SingleFlight::abandon(const std::string& key) {
  {
    std::lock_guard lock(mutex_);
    State& state = states_[key];
    if (state.built) return;
    ++state.epoch;
  }
  cv_.notify_all();
}

std::uint64_t SingleFlight::epoch(const std::string& key) const {
  std::lock_guard lock(mutex_);
  const auto it = states_.find(key);
  return it == states_.end() ? 0 : it->second.epoch;
}

bool SingleFlight::awaitBuilt(const std::string& key,
                              std::uint64_t epoch) const {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this, &key, epoch] {
    const auto it = states_.find(key);
    return it != states_.end() &&
           (it->second.built || it->second.epoch != epoch);
  });
  return states_.at(key).built;
}

BuildCache::BuildCache(ObjectStore& store, obs::Tracer* tracer,
                       obs::MetricsRegistry* metrics)
    : store_(store), tracer_(tracer), metrics_(metrics) {}

std::string BuildCache::cacheKey(const std::string& dagHash,
                                 const std::string& envFingerprint,
                                 const std::string& planHash) {
  return Hasher{}
      .update(dagHash)
      .update(envFingerprint)
      .update(planHash)
      .hex();
}

std::string BuildCache::environmentFingerprint(const SystemEnvironment& env) {
  return Hasher{}.update(env.renderConfig()).hex();
}

std::string BuildCache::serializeRecord(const BuildRecord& record) {
  return "{\"kind\":\"build_record\",\"rootHash\":" +
         obs::json::quote(record.rootHash) +
         ",\"planHash\":" + obs::json::quote(record.planHash) +
         ",\"binaryId\":" + obs::json::quote(record.binaryId) +
         ",\"buildSeconds\":" + str::fixed(record.buildSeconds, 6) +
         ",\"stepsExecuted\":" + std::to_string(record.stepsExecuted) +
         "}\n";
}

std::optional<BuildRecord> BuildCache::parseRecord(const std::string& bytes) {
  obs::json::Value value;
  try {
    value = obs::json::parse(str::trim(bytes));
  } catch (const ParseError&) {
    return std::nullopt;
  }
  if (!value.isObject() || value.stringOr("kind", "") != "build_record") {
    return std::nullopt;
  }
  BuildRecord record;
  record.rootHash = value.stringOr("rootHash", "");
  record.planHash = value.stringOr("planHash", "");
  record.binaryId = value.stringOr("binaryId", "");
  record.buildSeconds = value.numberOr("buildSeconds", 0.0);
  record.stepsExecuted = static_cast<int>(value.numberOr("stepsExecuted", 0));
  return record;
}

std::optional<BuildRecord> BuildCache::lookup(const std::string& key,
                                              const BuildPlan& plan) {
  return lookup(key, plan, tracer_, metrics_);
}

std::optional<BuildRecord> BuildCache::lookup(const std::string& key,
                                              const BuildPlan& plan,
                                              obs::Tracer* tracer,
                                              obs::MetricsRegistry* metrics) {
  obs::ScopedSpan span(tracer, "store.lookup");
  span.attr("key", key);

  auto finish = [&](const char* outcome,
                    std::optional<BuildRecord> record) {
    span.attr("outcome", outcome);
    if (metrics != nullptr) {
      metrics->counter(record ? "store.hit" : "store.miss").inc();
    }
    {
      std::lock_guard lock(statsMutex_);
      (record ? stats_.hits : stats_.misses) += 1;
    }
    return record;
  };

  const std::optional<std::string> hash = store_.ref("build/" + key);
  if (!hash) return finish("miss", std::nullopt);
  const std::optional<std::string> bytes = store_.get(*hash);
  if (!bytes) return finish("corrupt", std::nullopt);
  std::optional<BuildRecord> record = parseRecord(*bytes);
  // Verified reuse: the record must describe exactly the plan we are
  // about to (not) execute; any inconsistency is drift and means rebuild.
  if (!record || record->planHash != plan.planHash() ||
      record->rootHash != plan.rootHash) {
    return finish("drift", std::nullopt);
  }
  record->stepsExecuted = 0;
  record->stepsReusedFromCache = static_cast<int>(plan.steps.size());
  record->buildSeconds = 0.0;  // reuse costs no (simulated) build time
  return finish("hit", std::move(record));
}

void BuildCache::recordMiss(const std::string& key, obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics) {
  obs::ScopedSpan span(tracer, "store.lookup");
  span.attr("key", key);
  span.attr("outcome", "miss");
  if (metrics != nullptr) metrics->counter("store.miss").inc();
  std::lock_guard lock(statsMutex_);
  ++stats_.misses;
}

std::optional<BuildRecord> BuildCache::peek(const std::string& key,
                                            const BuildPlan& plan) const {
  const std::optional<std::string> hash = store_.ref("build/" + key);
  if (!hash) return std::nullopt;
  const std::optional<std::string> bytes = store_.peek(*hash);
  if (!bytes) return std::nullopt;
  std::optional<BuildRecord> record = parseRecord(*bytes);
  if (!record || record->planHash != plan.planHash() ||
      record->rootHash != plan.rootHash) {
    return std::nullopt;
  }
  record->stepsExecuted = 0;
  record->stepsReusedFromCache = static_cast<int>(plan.steps.size());
  record->buildSeconds = 0.0;
  return record;
}

void BuildCache::noteSingleFlightDeduped(std::uint64_t n) {
  std::lock_guard lock(statsMutex_);
  stats_.singleFlightDeduped += n;
}

void BuildCache::insert(const std::string& key, const BuildRecord& record) {
  insert(key, record, tracer_);
}

void BuildCache::insert(const std::string& key, const BuildRecord& record,
                        obs::Tracer* tracer) {
  const std::string hash = store_.put(serializeRecord(record));
  store_.setRef("build/" + key, hash);
  if (tracer != nullptr) {
    tracer->event("store.put",
                  {{"hash", hash},
                   {"bytes", std::to_string(
                                 serializeRecord(record).size())},
                   {"key", key}});
  }
}

}  // namespace rebench::store
