#include "core/store/manifest.hpp"

#include <fstream>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/hash.hpp"
#include "core/util/strings.hpp"

namespace rebench::store {

namespace {
using obs::json::quote;
}  // namespace

std::string renderInvocation(const CampaignInvocation& inv) {
  std::ostringstream out;
  out << "{\"mode\":" << quote(inv.mode)
      << ",\"system\":" << quote(inv.system)
      << ",\"account\":" << quote(inv.account)
      << ",\"repeats\":" << inv.repeats
      << ",\"benchmark\":" << quote(inv.benchmark)
      << ",\"ntimes\":" << inv.ntimes << ",\"settings\":[";
  for (std::size_t i = 0; i < inv.settings.size(); ++i) {
    if (i > 0) out << ",";
    out << "[" << quote(inv.settings[i].first) << ","
        << quote(inv.settings[i].second) << "]";
  }
  out << "],\"tag\":" << quote(inv.tag)
      << ",\"n\":" << quote(inv.namePattern)
      << ",\"x\":" << quote(inv.excludePattern)
      << ",\"faults\":" << quote(inv.faults)
      << ",\"retries\":" << inv.retries
      << ",\"backoffBase\":" << str::fixed(inv.backoffBase, 6)
      << ",\"backoffMultiplier\":" << str::fixed(inv.backoffMultiplier, 6)
      << ",\"backoffMax\":" << str::fixed(inv.backoffMax, 6)
      << ",\"quarantineAfter\":" << inv.quarantineAfter
      << ",\"stageTimeout\":" << str::fixed(inv.stageTimeout, 6)
      << ",\"lanes\":" << inv.lanes
      << ",\"ciHalfwidth\":" << str::fixed(inv.ciHalfwidth, 6)
      << ",\"minRepeats\":" << inv.minRepeats
      << ",\"maxRepeats\":" << inv.maxRepeats
      << ",\"withStore\":" << (inv.withStore ? "true" : "false")
      << ",\"cache\":" << (inv.cache ? "true" : "false")
      << ",\"probe\":" << quote(inv.probe) << "}";
  return out.str();
}

CampaignInvocation parseInvocation(const obs::json::Value& value) {
  CampaignInvocation inv;
  inv.mode = value.stringOr("mode", "");
  inv.system = value.stringOr("system", "local");
  inv.account = value.stringOr("account", "ec999");
  inv.repeats = static_cast<int>(value.numberOr("repeats", 1));
  inv.benchmark = value.stringOr("benchmark", "");
  inv.ntimes = static_cast<int>(value.numberOr("ntimes", -1));
  if (value.contains("settings")) {
    for (const obs::json::Value& pair : value.at("settings").array) {
      if (pair.array.size() == 2) {
        inv.settings.emplace_back(pair.array[0].text, pair.array[1].text);
      }
    }
  }
  inv.tag = value.stringOr("tag", "");
  inv.namePattern = value.stringOr("n", "");
  inv.excludePattern = value.stringOr("x", "");
  inv.faults = value.stringOr("faults", "");
  inv.retries = static_cast<int>(value.numberOr("retries", -1));
  inv.backoffBase = value.numberOr("backoffBase", -1.0);
  inv.backoffMultiplier = value.numberOr("backoffMultiplier", -1.0);
  inv.backoffMax = value.numberOr("backoffMax", -1.0);
  inv.quarantineAfter =
      static_cast<int>(value.numberOr("quarantineAfter", -1));
  inv.stageTimeout = value.numberOr("stageTimeout", -1.0);
  inv.lanes = static_cast<int>(value.numberOr("lanes", -1));
  inv.ciHalfwidth = value.numberOr("ciHalfwidth", -1.0);
  inv.minRepeats = static_cast<int>(value.numberOr("minRepeats", -1));
  inv.maxRepeats = static_cast<int>(value.numberOr("maxRepeats", -1));
  inv.withStore =
      value.contains("withStore") && value.at("withStore").boolean;
  inv.cache = !value.contains("cache") || value.at("cache").boolean;
  inv.probe = value.stringOr("probe", "");
  return inv;
}

namespace {

std::string renderRun(const RunManifest& run) {
  std::ostringstream out;
  out << "{\"test\":" << quote(run.test)
      << ",\"target\":" << quote(run.target)
      << ",\"repeat\":" << run.repeat
      << ",\"environ\":" << quote(run.environ)
      << ",\"spec\":" << quote(run.spec)
      << ",\"specHash\":" << quote(run.specHash)
      << ",\"planHash\":" << quote(run.planHash)
      << ",\"binaryId\":" << quote(run.binaryId) << ",\"buildSteps\":[";
  for (std::size_t i = 0; i < run.buildSteps.size(); ++i) {
    if (i > 0) out << ",";
    out << quote(run.buildSteps[i]);
  }
  out << "],\"launch\":" << quote(run.launchCommand)
      << ",\"jobId\":" << quote(run.jobId)
      << ",\"outcome\":" << quote(run.outcome)
      << ",\"failureStage\":" << quote(run.failureStage)
      << ",\"attempts\":" << run.attempts;
  // Rendered only when present so unprobed manifests keep their bytes.
  if (!run.facets.empty()) {
    out << ",\"facets\":{";
    bool first = true;
    for (const auto& [key, value] : run.facets) {
      if (!first) out << ",";
      first = false;
      out << quote(key) << ":" << quote(value);
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

RunManifest parseRun(const obs::json::Value& value) {
  RunManifest run;
  run.test = value.stringOr("test", "");
  run.target = value.stringOr("target", "");
  run.repeat = static_cast<int>(value.numberOr("repeat", 0));
  run.environ = value.stringOr("environ", "");
  run.spec = value.stringOr("spec", "");
  run.specHash = value.stringOr("specHash", "");
  run.planHash = value.stringOr("planHash", "");
  run.binaryId = value.stringOr("binaryId", "");
  if (value.contains("buildSteps")) {
    for (const obs::json::Value& step : value.at("buildSteps").array) {
      run.buildSteps.push_back(step.text);
    }
  }
  run.launchCommand = value.stringOr("launch", "");
  run.jobId = value.stringOr("jobId", "");
  run.outcome = value.stringOr("outcome", "");
  run.failureStage = value.stringOr("failureStage", "");
  run.attempts = static_cast<int>(value.numberOr("attempts", 1));
  if (value.contains("facets")) {
    for (const auto& [key, facet] : value.at("facets").object) {
      run.facets[key] = facet.text;
    }
  }
  return run;
}

}  // namespace

std::string CampaignManifest::render() const {
  std::ostringstream out;
  out << "{\"schema\":" << quote(schema)
      << ",\"invocation\":" << renderInvocation(invocation) << ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) out << ",";
    out << renderRun(runs[i]);
  }
  out << "],\"foms\":[";
  for (std::size_t i = 0; i < foms.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"test\":" << quote(foms[i].test)
        << ",\"target\":" << quote(foms[i].target)
        << ",\"fom\":" << quote(foms[i].fom)
        << ",\"mean\":" << str::fixed(foms[i].mean, 6)
        << ",\"ci\":" << str::fixed(foms[i].ciHalfwidth, 6)
        << ",\"ess\":" << str::fixed(foms[i].ess, 3)
        << ",\"autocorr\":" << str::fixed(foms[i].autocorr, 6)
        << ",\"repeats\":" << foms[i].repeats << "}";
  }
  out << "],\"artifacts\":[";
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"name\":" << quote(artifacts[i].name)
        << ",\"hash\":" << quote(artifacts[i].hash)
        << ",\"bytes\":" << artifacts[i].bytes << "}";
  }
  out << "]}\n";
  return out.str();
}

CampaignManifest CampaignManifest::parse(const std::string& text) {
  const obs::json::Value value = obs::json::parse(str::trim(text));
  if (!value.isObject()) throw ParseError("manifest: not a JSON object");
  CampaignManifest manifest;
  manifest.schema = value.stringOr("schema", "");
  if (manifest.schema != kManifestSchema) {
    throw Error("manifest schema '" + manifest.schema +
                "' is not supported (expected '" +
                std::string(kManifestSchema) + "')");
  }
  if (value.contains("invocation")) {
    manifest.invocation = parseInvocation(value.at("invocation"));
  }
  if (value.contains("runs")) {
    for (const obs::json::Value& run : value.at("runs").array) {
      manifest.runs.push_back(parseRun(run));
    }
  }
  if (value.contains("foms")) {
    for (const obs::json::Value& fom : value.at("foms").array) {
      FomManifest record;
      record.test = fom.stringOr("test", "");
      record.target = fom.stringOr("target", "");
      record.fom = fom.stringOr("fom", "");
      record.mean = fom.numberOr("mean", 0);
      record.ciHalfwidth = fom.numberOr("ci", 0);
      record.ess = fom.numberOr("ess", 0);
      record.autocorr = fom.numberOr("autocorr", 0);
      record.repeats = static_cast<int>(fom.numberOr("repeats", 0));
      manifest.foms.push_back(std::move(record));
    }
  }
  if (value.contains("artifacts")) {
    for (const obs::json::Value& artifact : value.at("artifacts").array) {
      ArtifactRecord record;
      record.name = artifact.stringOr("name", "");
      record.hash = artifact.stringOr("hash", "");
      record.bytes =
          static_cast<std::uint64_t>(artifact.numberOr("bytes", 0));
      manifest.artifacts.push_back(std::move(record));
    }
  }
  return manifest;
}

CampaignManifest CampaignManifest::read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read manifest '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

void CampaignManifest::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write manifest '" + path + "'");
  out << render();
}

std::string CampaignManifest::contentHash() const {
  return Hasher{}.update(render()).hex();
}

ReplayComparison compareArtifacts(
    const CampaignManifest& manifest,
    const std::map<std::string, std::string>& replayed) {
  ReplayComparison comparison;
  for (const ArtifactRecord& recorded : manifest.artifacts) {
    auto it = replayed.find(recorded.name);
    if (it == replayed.end()) {
      comparison.missing.push_back(recorded.name);
      continue;
    }
    ReplayComparison::Artifact artifact;
    artifact.name = recorded.name;
    artifact.recordedHash = recorded.hash;
    artifact.replayedHash = Hasher{}.update(it->second).hex();
    artifact.exact = artifact.recordedHash == artifact.replayedHash;
    comparison.artifacts.push_back(std::move(artifact));
  }
  return comparison;
}

bool ReplayComparison::allExact() const {
  if (!missing.empty()) return false;
  for (const Artifact& artifact : artifacts) {
    if (!artifact.exact) return false;
  }
  return true;
}

std::string renderReplayReport(const ReplayComparison& comparison) {
  std::string out;
  std::size_t exact = 0;
  for (const ReplayComparison::Artifact& artifact : comparison.artifacts) {
    if (artifact.exact) {
      ++exact;
      out += "  artifact " + artifact.name + ": exact (" +
             artifact.recordedHash + ")\n";
    } else {
      out += "  artifact " + artifact.name + ": DIVERGENT (recorded " +
             artifact.recordedHash + ", replayed " + artifact.replayedHash +
             ")\n";
    }
  }
  for (const std::string& name : comparison.missing) {
    out += "  artifact " + name + ": MISSING (not regenerated by replay)\n";
  }
  out += "replay: " + std::to_string(exact) + "/" +
         std::to_string(comparison.artifacts.size() +
                        comparison.missing.size()) +
         " artifact(s) byte-exact\n";
  return out;
}

}  // namespace rebench::store
