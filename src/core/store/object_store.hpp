// Content-addressed artifact store (rebench::store layer 1).
//
// A directory of immutable blobs named by their content hash, plus an
// append-only JSONL index that records puts, touches, refs and evictions.
// The store backs the build cache, manifest artifacts (perflogs, traces)
// and anything else worth keeping between campaigns:
//
//   DIR/objects/<hash>   one file per blob, written via tmp + atomic rename
//   DIR/index.jsonl      {"kind":"meta","schema":"rebench.store/1"}
//                        {"kind":"put","hash":H,"bytes":N,"tick":T}
//                        {"kind":"touch","hash":H,"tick":T}
//                        {"kind":"ref","name":K,"hash":H}
//                        {"kind":"evict","hash":H}
//                        {"kind":"pin","hash":H}   /  {"kind":"unpin","hash":H}
//
// Reads are *verified*: `get` re-hashes the blob and a mismatch (a
// truncated or tampered file) deletes the object and reports a miss, so a
// corrupt cache degrades to a rebuild instead of a wrong result.  A
// size cap (`maxBytes`) evicts least-recently-used objects; named refs
// (the build cache's provenance keys) are unpinned automatically when
// their target is evicted.  Pinned objects (history segments, anything
// the caller cannot afford to lose to cache pressure) are exempt from
// LRU eviction until unpinned.  The append-only index grows one line per
// touch; `compactIndex` rewrites it down to the live state.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::store {

inline constexpr std::string_view kStoreSchema = "rebench.store/1";

struct StoreOptions {
  /// Total blob bytes before LRU eviction kicks in; 0 = uncapped.
  std::uint64_t maxBytes = 0;
};

class ObjectStore {
 public:
  /// Opens (creating when absent) the store at `dir` and replays its
  /// index.  Index entries whose object file vanished are dropped.
  /// Throws rebench::Error when the directory or index is unusable.
  explicit ObjectStore(std::string dir, StoreOptions options = {});

  /// Content hash used for addressing (FNV-1a hex, 16 chars).
  static std::string hashBytes(std::string_view bytes);

  /// Stores `bytes`, returning their hash.  Idempotent: a blob already
  /// present is not rewritten (the put is counted as deduplicated and the
  /// object's LRU position refreshed).  May evict other objects to honour
  /// the size cap; the just-put object is never evicted by its own put.
  std::string put(std::string_view bytes);

  /// Verified read: returns the bytes iff the blob exists and re-hashes
  /// to `hash`.  A corrupt blob is deleted and counted.
  std::optional<std::string> get(const std::string& hash);

  /// Verified read with no side effects: no touch, no stats, no index
  /// writes, no corruption handling.  Used by the parallel executor's
  /// pre-pass to classify keys without perturbing LRU state.
  std::optional<std::string> peek(const std::string& hash) const;

  bool contains(const std::string& hash) const;

  /// Optional hooks (both nullable, not owned): evictions become
  /// `store.evict` events (`hash`, `bytes` attrs) and `store.evict`
  /// counter increments; corrupt blobs bump `store.corrupt`.
  void setObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// Named mutable pointers into the store (e.g. build-cache keys,
  /// "latest manifest").  A ref to an evicted/absent object reads as
  /// unset.
  void setRef(std::string_view name, const std::string& hash);
  std::optional<std::string> ref(std::string_view name) const;

  /// Exempts an object from LRU eviction until `unpin`.  Pinning an
  /// absent hash is a no-op (nothing to protect); pins persist in the
  /// index across reopen.
  void pin(const std::string& hash);
  void unpin(const std::string& hash);
  bool pinned(const std::string& hash) const;

  /// Rewrites the append-only index down to the live state (meta + one
  /// put per surviving object + refs + pins), discarding the touch /
  /// evict / superseded-ref churn.  Tick order — and therefore LRU
  /// order — is preserved.  Returns the number of index lines written.
  std::size_t compactIndex();

  struct Stats {
    std::uint64_t puts = 0;           // total put() calls
    std::uint64_t dedupedPuts = 0;    // puts that found the blob present
    std::uint64_t evictions = 0;      // objects removed by the size cap
    std::uint64_t corrupt = 0;        // verification failures on get()
  };
  Stats stats() const {
    std::lock_guard lock(mutex_);
    return stats_;
  }

  std::size_t objectCount() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }
  std::uint64_t totalBytes() const {
    std::lock_guard lock(mutex_);
    return totalBytes_;
  }
  const std::string& dir() const { return dir_; }
  std::string objectPath(const std::string& hash) const;

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    std::uint64_t lastUse = 0;  // logical tick, higher = more recent
  };

  // Private helpers assume mutex_ is held by the caller.
  void appendIndex(const std::string& line);
  void touch(const std::string& hash);
  void removeObject(const std::string& hash);
  /// Evicts LRU objects until `incoming` more bytes fit; never evicts
  /// `protect`.
  void evictToFit(std::uint64_t incoming, const std::string& protect);

  // Serializes all public operations: the store is shared by concurrent
  // campaign workers in the parallel executor.
  mutable std::mutex mutex_;
  std::string dir_;
  std::string indexPath_;
  StoreOptions options_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::string, std::less<>> refs_;  // name -> hash
  std::set<std::string, std::less<>> pinned_;             // eviction-exempt
  std::uint64_t totalBytes_ = 0;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace rebench::store
