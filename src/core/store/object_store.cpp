#include "core/store/object_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/trace.hpp"
#include "core/util/error.hpp"
#include "core/util/hash.hpp"
#include "core/util/strings.hpp"

namespace rebench::store {

namespace fs = std::filesystem;

std::string ObjectStore::hashBytes(std::string_view bytes) {
  return Hasher{}.update(bytes).hex();
}

std::string ObjectStore::objectPath(const std::string& hash) const {
  return (fs::path(dir_) / "objects" / hash).string();
}

ObjectStore::ObjectStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      indexPath_((fs::path(dir_) / "index.jsonl").string()),
      options_(options) {
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "objects", ec);
  if (ec) {
    throw Error("cannot create object store at '" + dir_ +
                "': " + ec.message());
  }
  if (!fs::exists(indexPath_)) {
    std::ofstream out(indexPath_);
    if (!out) throw Error("cannot create store index '" + indexPath_ + "'");
    out << "{\"kind\":\"meta\",\"schema\":" << obs::json::quote(kStoreSchema)
        << "}\n";
    return;
  }
  std::ifstream in(indexPath_);
  if (!in) throw Error("cannot read store index '" + indexPath_ + "'");
  std::string line;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    obs::json::Value record;
    try {
      record = obs::json::parse(line);
    } catch (const ParseError&) {
      continue;  // truncated tail from a killed process; replaying skips it
    }
    if (!record.isObject()) continue;
    const std::string kind = record.stringOr("kind", "");
    if (kind == "meta") {
      const std::string schema = record.stringOr("schema", "");
      if (schema != kStoreSchema) {
        throw Error("store index '" + indexPath_ + "' has schema '" + schema +
                    "' (expected '" + std::string(kStoreSchema) + "')");
      }
    } else if (kind == "put") {
      const std::string hash = record.stringOr("hash", "");
      Entry entry;
      entry.bytes = static_cast<std::uint64_t>(record.numberOr("bytes", 0));
      entry.lastUse = static_cast<std::uint64_t>(record.numberOr("tick", 0));
      entries_[hash] = entry;
      tick_ = std::max(tick_, entry.lastUse + 1);
    } else if (kind == "touch") {
      auto it = entries_.find(record.stringOr("hash", ""));
      if (it != entries_.end()) {
        it->second.lastUse =
            static_cast<std::uint64_t>(record.numberOr("tick", 0));
        tick_ = std::max(tick_, it->second.lastUse + 1);
      }
    } else if (kind == "ref") {
      refs_[record.stringOr("name", "")] = record.stringOr("hash", "");
    } else if (kind == "evict") {
      entries_.erase(record.stringOr("hash", ""));
    } else if (kind == "pin") {
      pinned_.insert(record.stringOr("hash", ""));
    } else if (kind == "unpin") {
      pinned_.erase(record.stringOr("hash", ""));
    }
  }
  // Drop entries whose blob vanished behind our back (manual deletion);
  // the store never trusts the index over the filesystem.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!fs::exists(objectPath(it->first))) {
      it = entries_.erase(it);
    } else {
      totalBytes_ += it->second.bytes;
      ++it;
    }
  }
  // A pin on a vanished object protects nothing.
  for (auto it = pinned_.begin(); it != pinned_.end();) {
    if (!entries_.contains(*it)) {
      it = pinned_.erase(it);
    } else {
      ++it;
    }
  }
}

void ObjectStore::appendIndex(const std::string& line) {
  std::ofstream out(indexPath_, std::ios::app);
  if (!out) throw Error("cannot append to store index '" + indexPath_ + "'");
  out << line << "\n";
}

void ObjectStore::touch(const std::string& hash) {
  auto it = entries_.find(hash);
  if (it == entries_.end()) return;
  it->second.lastUse = tick_++;
  appendIndex("{\"kind\":\"touch\",\"hash\":" + obs::json::quote(hash) +
              ",\"tick\":" + std::to_string(it->second.lastUse) + "}");
}

void ObjectStore::removeObject(const std::string& hash) {
  auto it = entries_.find(hash);
  if (it != entries_.end()) {
    totalBytes_ -= it->second.bytes;
    entries_.erase(it);
  }
  std::error_code ec;
  fs::remove(objectPath(hash), ec);
  appendIndex("{\"kind\":\"evict\",\"hash\":" + obs::json::quote(hash) + "}");
}

void ObjectStore::evictToFit(std::uint64_t incoming,
                             const std::string& protect) {
  if (options_.maxBytes == 0) return;
  while (totalBytes_ + incoming > options_.maxBytes && !entries_.empty()) {
    // Least-recently-used victim, skipping the object being protected
    // and anything pinned.
    const Entry* oldest = nullptr;
    std::string victim;
    for (const auto& [hash, entry] : entries_) {
      if (hash == protect || pinned_.contains(hash)) continue;
      if (oldest == nullptr || entry.lastUse < oldest->lastUse) {
        oldest = &entry;
        victim = hash;
      }
    }
    if (oldest == nullptr) return;  // only protected/pinned objects remain
    const std::uint64_t victimBytes = oldest->bytes;
    removeObject(victim);
    ++stats_.evictions;
    if (tracer_ != nullptr) {
      tracer_->event("store.evict",
                     {{"hash", victim},
                      {"bytes", std::to_string(victimBytes)}});
    }
    if (metrics_ != nullptr) metrics_->counter("store.evict").inc();
  }
}

void ObjectStore::setObservability(obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  tracer_ = tracer;
  metrics_ = metrics;
}

std::string ObjectStore::put(std::string_view bytes) {
  std::lock_guard lock(mutex_);
  const std::string hash = hashBytes(bytes);
  ++stats_.puts;
  if (auto it = entries_.find(hash);
      it != entries_.end() && fs::exists(objectPath(hash))) {
    ++stats_.dedupedPuts;
    touch(hash);
    return hash;
  }
  evictToFit(bytes.size(), hash);
  // Atomic publication: a concurrent writer of the same content races to
  // an identical file, and rename() makes whichever lands last win whole.
  const std::string tmp =
      (fs::path(dir_) / ("tmp-" + hash + "-" +
                         std::to_string(static_cast<unsigned>(tick_))))
          .string();
  {
    std::ofstream out(tmp, std::ios::binary);
    if (!out) throw Error("cannot write store object '" + tmp + "'");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::error_code ec;
  fs::rename(tmp, objectPath(hash), ec);
  if (ec) {
    fs::remove(tmp);
    throw Error("cannot publish store object '" + hash +
                "': " + ec.message());
  }
  Entry entry;
  entry.bytes = bytes.size();
  entry.lastUse = tick_++;
  totalBytes_ += entry.bytes;
  entries_[hash] = entry;
  appendIndex("{\"kind\":\"put\",\"hash\":" + obs::json::quote(hash) +
              ",\"bytes\":" + std::to_string(entry.bytes) +
              ",\"tick\":" + std::to_string(entry.lastUse) + "}");
  return hash;
}

std::optional<std::string> ObjectStore::get(const std::string& hash) {
  std::lock_guard lock(mutex_);
  const std::string path = objectPath(hash);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::string content = bytes.str();
  if (hashBytes(content) != hash) {
    // Truncated or tampered blob: drop it so the caller rebuilds rather
    // than trusting bytes that no longer match their address.
    ++stats_.corrupt;
    removeObject(hash);
    if (metrics_ != nullptr) metrics_->counter("store.corrupt").inc();
    return std::nullopt;
  }
  touch(hash);
  return content;
}

std::optional<std::string> ObjectStore::peek(const std::string& hash) const {
  std::lock_guard lock(mutex_);
  if (!entries_.contains(hash)) return std::nullopt;
  std::ifstream in(objectPath(hash), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::string content = bytes.str();
  if (hashBytes(content) != hash) return std::nullopt;
  return content;
}

bool ObjectStore::contains(const std::string& hash) const {
  std::lock_guard lock(mutex_);
  return entries_.contains(hash) && fs::exists(objectPath(hash));
}

void ObjectStore::setRef(std::string_view name, const std::string& hash) {
  std::lock_guard lock(mutex_);
  refs_[std::string(name)] = hash;
  appendIndex("{\"kind\":\"ref\",\"name\":" + obs::json::quote(name) +
              ",\"hash\":" + obs::json::quote(hash) + "}");
}

std::optional<std::string> ObjectStore::ref(std::string_view name) const {
  std::lock_guard lock(mutex_);
  auto it = refs_.find(name);
  if (it == refs_.end()) return std::nullopt;
  // A ref whose target was evicted or deleted reads as unset.
  if (!entries_.contains(it->second)) return std::nullopt;
  return it->second;
}

void ObjectStore::pin(const std::string& hash) {
  std::lock_guard lock(mutex_);
  if (!entries_.contains(hash)) return;  // nothing to protect
  if (!pinned_.insert(hash).second) return;
  appendIndex("{\"kind\":\"pin\",\"hash\":" + obs::json::quote(hash) + "}");
}

void ObjectStore::unpin(const std::string& hash) {
  std::lock_guard lock(mutex_);
  if (pinned_.erase(hash) == 0) return;
  appendIndex("{\"kind\":\"unpin\",\"hash\":" + obs::json::quote(hash) + "}");
}

bool ObjectStore::pinned(const std::string& hash) const {
  std::lock_guard lock(mutex_);
  return pinned_.contains(hash);
}

std::size_t ObjectStore::compactIndex() {
  std::lock_guard lock(mutex_);
  // Puts must be replayed in tick order so a future reopen reconstructs
  // the same LRU ordering the live store has now.
  std::vector<std::pair<std::uint64_t, const std::string*>> byTick;
  byTick.reserve(entries_.size());
  for (const auto& [hash, entry] : entries_) {
    byTick.emplace_back(entry.lastUse, &hash);
  }
  std::sort(byTick.begin(), byTick.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : *a.second < *b.second;
            });
  std::ostringstream out;
  std::size_t lines = 0;
  out << "{\"kind\":\"meta\",\"schema\":" << obs::json::quote(kStoreSchema)
      << "}\n";
  ++lines;
  for (const auto& [tick, hash] : byTick) {
    out << "{\"kind\":\"put\",\"hash\":" << obs::json::quote(*hash)
        << ",\"bytes\":" << entries_.at(*hash).bytes
        << ",\"tick\":" << tick << "}\n";
    ++lines;
  }
  for (const auto& [name, hash] : refs_) {
    out << "{\"kind\":\"ref\",\"name\":" << obs::json::quote(name)
        << ",\"hash\":" << obs::json::quote(hash) << "}\n";
    ++lines;
  }
  for (const std::string& hash : pinned_) {
    out << "{\"kind\":\"pin\",\"hash\":" << obs::json::quote(hash) << "}\n";
    ++lines;
  }
  // Same tmp + atomic-rename discipline as blob publication: a crash
  // mid-compaction leaves either the old index or the new one, never a
  // torn file.
  const std::string tmp = indexPath_ + ".compact";
  {
    std::ofstream file(tmp, std::ios::binary);
    if (!file) throw Error("cannot write compacted index '" + tmp + "'");
    file << out.str();
  }
  std::error_code ec;
  fs::rename(tmp, indexPath_, ec);
  if (ec) {
    fs::remove(tmp);
    throw Error("cannot replace store index '" + indexPath_ +
                "': " + ec.message());
  }
  return lines;
}

}  // namespace rebench::store
