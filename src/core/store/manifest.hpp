// Provenance manifests and byte-exact replay (rebench::store layer 2).
//
// A campaign manifest is a schema-versioned JSON lockfile capturing the
// complete Principle-4/5 chain of one CLI campaign: the normalized
// invocation (what was asked for), one record per executed pipeline run
// (concretized spec + hashes, environment, build-plan steps, launcher
// command, scheduler/fault/retry configuration, outcome), and the
// content hashes of every artifact the campaign produced (perflog,
// trace).  Together with the object store this makes a finished campaign
// a *verifiable* object: `rebench replay <manifest>` re-executes the
// invocation from scratch and diffs the regenerated artifact bytes
// against the recorded hashes, reporting exact/divergent per artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rebench::obs::json {
struct Value;
}  // namespace rebench::obs::json

namespace rebench::store {

inline constexpr std::string_view kManifestSchema = "rebench.manifest/1";

/// The normalized CLI invocation a manifest can re-execute.  Numeric
/// fields default to "unset" sentinels (-1) so replay applies the same
/// defaults the original run did.
struct CampaignInvocation {
  std::string mode;       // "run" | "suite"
  std::string system;     // target "system[:partition]"
  std::string account = "ec999";
  int repeats = 1;

  // run mode
  std::string benchmark;
  int ntimes = -1;
  std::vector<std::pair<std::string, std::string>> settings;  // -S key=value

  // suite mode
  std::string tag;
  std::string namePattern;     // -n
  std::string excludePattern;  // -x

  // resilience configuration (raw --faults spec; "" = off)
  std::string faults;
  int retries = -1;
  double backoffBase = -1.0;
  double backoffMultiplier = -1.0;
  double backoffMax = -1.0;
  int quarantineAfter = -1;
  /// Per-stage watchdog deadline in simulated seconds (--stage-timeout);
  /// <= 0 = no deadline.
  double stageTimeout = -1.0;
  /// Canonical virtual-lane width stamped into worker spans for
  /// profiling (--lanes); -1 = pipeline default.  Recorded because it
  /// shapes trace bytes, which replay must reproduce exactly.
  int lanes = -1;

  /// Adaptive run-length control (rebench::infer, --ci-halfwidth /
  /// --min-repeats / --max-repeats); ciHalfwidth <= 0 = fixed repeats.
  /// Recorded so replay re-runs the same adaptive schedule and the run
  /// memoization key (which hashes the rendered invocation) separates
  /// adaptive from fixed-repeat campaigns.
  double ciHalfwidth = -1.0;
  int minRepeats = -1;
  int maxRepeats = -1;

  // store configuration: whether a --store was attached and whether
  // build caching was enabled (--no-cache clears it).  Replay uses these
  // to reproduce the same store.* observability with a fresh store.
  bool withStore = false;
  bool cache = true;

  /// Per-stage resource accounting (--probe): "" = off, "sim" =
  /// deterministic synthetic samples, "real" = getrusage deltas.
  /// Recorded because probing adds perflog extras, telemetry.probe
  /// spans and manifest facets — bytes the run-memoization key (which
  /// hashes this rendering) must separate from unprobed campaigns.
  std::string probe;
};

/// Deterministic JSON rendering of an invocation (stable key order).
/// Public because the serve queue protocol embeds invocations in
/// submission files and run-memoization keys hash these exact bytes.
std::string renderInvocation(const CampaignInvocation& inv);

/// Parses an invocation object rendered by renderInvocation.
CampaignInvocation parseInvocation(const obs::json::Value& value);

/// Provenance of one executed (test, target, repeat) pipeline run.
struct RunManifest {
  std::string test;
  std::string target;  // "system:partition"
  int repeat = 0;
  std::string environ;
  std::string spec;      // concretized short form
  std::string specHash;  // DAG hash (Principle 4)
  std::string planHash;
  std::string binaryId;  // build provenance (Principle 3)
  std::vector<std::string> buildSteps;  // reproducible commands, in order
  std::string launchCommand;
  std::string jobId;
  std::string outcome;  // "pass" | "fail" | "quarantined"
  std::string failureStage;
  int attempts = 1;
  /// Resource-accounting facets (probed campaigns only; empty maps are
  /// not rendered, so unprobed manifest bytes are untouched).  Keys like
  /// "rusage_build_user_ms"; values pre-formatted decimal strings.
  std::map<std::string, std::string> facets;
};

/// A campaign artifact pinned by content hash (perflog, trace, ...).
struct ArtifactRecord {
  std::string name;
  std::string hash;
  std::uint64_t bytes = 0;
};

/// Statistical summary of one (test, target, fom) series across the
/// campaign's repeats (rebench::infer estimators) — the manifest view
/// of what the history index records.
struct FomManifest {
  std::string test;
  std::string target;
  std::string fom;
  double mean = 0.0;
  double ciHalfwidth = 0.0;  // 95%, autocorrelation-corrected
  double ess = 0.0;
  double autocorr = 0.0;
  int repeats = 0;
};

struct CampaignManifest {
  std::string schema = std::string(kManifestSchema);
  CampaignInvocation invocation;
  std::vector<RunManifest> runs;
  std::vector<FomManifest> foms;  // canonical (test, target, fom) order
  std::vector<ArtifactRecord> artifacts;

  /// Deterministic JSON rendering (stable key order).
  std::string render() const;

  /// Parses a rendered manifest.  Throws rebench::ParseError on malformed
  /// JSON and rebench::Error on a schema-version mismatch.
  static CampaignManifest parse(const std::string& text);

  /// Reads and parses `path`; throws rebench::Error when unreadable.
  static CampaignManifest read(const std::string& path);

  /// Writes `render()` to `path` (truncating); throws on I/O failure.
  void write(const std::string& path) const;

  /// Stable fingerprint of the manifest contents (used to name the file).
  std::string contentHash() const;
};

/// Outcome of diffing replayed artifact bytes against a manifest.
struct ReplayComparison {
  struct Artifact {
    std::string name;
    std::string recordedHash;
    std::string replayedHash;
    bool exact = false;
  };
  std::vector<Artifact> artifacts;
  /// Artifact names recorded in the manifest but not regenerated.
  std::vector<std::string> missing;

  bool allExact() const;
};

/// Compares replayed artifacts (name -> regenerated bytes) against the
/// hashes the manifest recorded.
ReplayComparison compareArtifacts(
    const CampaignManifest& manifest,
    const std::map<std::string, std::string>& replayed);

/// Human-readable replay report ("exact"/"DIVERGENT" per artifact).
std::string renderReplayReport(const ReplayComparison& comparison);

}  // namespace rebench::store
