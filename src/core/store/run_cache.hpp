// Run-level memoization (rebench::store layer 2).
//
// The BuildCache memoizes *builds*; the RunCache memoizes whole campaign
// executions for the serve daemon.  Key = hash(invocation bytes + system
// environment fingerprint + system configuration + concretized spec DAG
// hashes + repeat policy) — computed by service::runKeyFor — and the
// value is a small record citing the recorded campaign manifest and
// perflog blobs in the object store.  A submission whose key is warm is
// answered from the record without re-executing anything; any drift in
// the key (new compiler, changed repeats, edited spec) misses and forces
// a fresh run.
//
// Lookups are *verified* like every other store read: a record blob that
// fails hash verification is reported kCorrupt (the store already
// deleted it), and a record whose cited manifest no longer exists on
// disk is kStale — both degrade to a re-execution, never a wrong
// verdict.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rebench::obs {
class Tracer;
class MetricsRegistry;
}  // namespace rebench::obs

namespace rebench::store {

class ObjectStore;

inline constexpr std::string_view kRunCacheSchema = "rebench.runcache/1";

/// The memoized outcome of one executed campaign.
struct RunRecord {
  std::string key;           // run-memoization key (runKeyFor)
  std::string verdict;       // "ran:clean" | "ran:regressed"
  std::string manifestHash;  // campaign manifest content hash
  std::string perflogHash;   // perflog artifact hash in the store
  int runs = 0;              // executed (test, target, repeat) tuples
  int regressions = 0;       // gate-flagged series count at record time

  /// One-line JSON, deterministic key order.
  std::string serialize() const;
  /// Parses serialize() output; throws rebench::ParseError / Error.
  static RunRecord parse(const std::string& text);
};

/// Store-backed run memo table.  Records live as pinned blobs addressed
/// via "runcache/<key>" named refs, so they survive LRU pressure and
/// reopen with the store.
class RunCache {
 public:
  explicit RunCache(ObjectStore& store) : store_(store) {}

  /// Both nullable, not owned.  Lookups emit `store.runcache` spans
  /// (attrs: key, outcome) and tick store.runcache_{hit,miss,corrupt,
  /// stale} counters.
  void setObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  enum class Outcome { kHit, kMiss, kCorrupt, kStale };

  struct Lookup {
    Outcome outcome = Outcome::kMiss;
    std::optional<RunRecord> record;  // set iff outcome == kHit
    bool hit() const { return outcome == Outcome::kHit; }
  };

  /// Verified lookup of `key`.  kCorrupt when the record blob failed
  /// verification; kStale when the record parses but its cited manifest
  /// file is gone (treated as a miss by callers, but distinguishable for
  /// degraded-mode accounting).
  Lookup lookup(const std::string& key);

  /// Memoizes `record` under its key: blob put + pin + named ref.
  void insert(const RunRecord& record);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t stale = 0;
  };
  const Stats& stats() const { return stats_; }

  static std::string refName(std::string_view key);
  static std::string_view outcomeName(Outcome outcome);

 private:
  ObjectStore& store_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  Stats stats_;
};

}  // namespace rebench::store
