#include "core/telemetry/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>

#include "core/util/error.hpp"

namespace rebench::telemetry {

namespace {

struct ParsedAddress {
  std::string host;
  int port = 0;
};

ParsedAddress parseHostPort(const std::string& listen) {
  const std::size_t colon = listen.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= listen.size()) {
    throw Error("listen address '" + listen + "' is not HOST:PORT");
  }
  ParsedAddress parsed;
  parsed.host = listen.substr(0, colon);
  try {
    parsed.port = std::stoi(listen.substr(colon + 1));
  } catch (const std::exception&) {
    throw Error("listen address '" + listen + "' has a non-numeric port");
  }
  if (parsed.port < 0 || parsed.port > 65535) {
    throw Error("listen port out of range in '" + listen + "'");
  }
  return parsed;
}

sockaddr_in resolveIpv4(const ParsedAddress& address) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(address.port));
  const std::string host =
      address.host == "localhost" ? "127.0.0.1" : address.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("cannot parse IPv4 host '" + address.host + "'");
  }
  return addr;
}

/// Reads until the end of the request headers (CRLFCRLF) or EOF; the
/// endpoint only serves GET, so bodies are ignored.
std::string readRequestHead(int fd) {
  std::string data;
  char buffer[2048];
  while (data.find("\r\n\r\n") == std::string::npos &&
         data.size() < 64 * 1024) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, 5000) <= 0) break;  // slow client: give up
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    data.append(buffer, static_cast<std::size_t>(n));
  }
  return data;
}

const char* statusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void writeAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

StatusServer::StatusServer(Handler handler)
    : handler_(std::move(handler)),
      tracer_(std::make_unique<obs::WallClock>()) {}

StatusServer::~StatusServer() { stop(); }

void StatusServer::start(const std::string& listen) {
  if (running_) throw Error("status server already running");
  const sockaddr_in addr = resolveIpv4(parseHostPort(listen));

  listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw Error("cannot create endpoint socket");
  const int one = 1;
  setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      ::listen(listenFd_, 16) != 0) {
    close(listenFd_);
    listenFd_ = -1;
    throw Error("cannot bind endpoint to '" + listen + "': " +
                std::strerror(errno));
  }

  sockaddr_in bound{};
  socklen_t boundLen = sizeof(bound);
  getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &boundLen);
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  boundAddress_ = std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));

  if (pipe(wakePipe_) != 0) {
    close(listenFd_);
    listenFd_ = -1;
    throw Error("cannot create endpoint wake pipe");
  }
  running_ = true;
  thread_ = std::thread([this] { serveLoop(); });
}

void StatusServer::stop() {
  if (!running_) return;
  running_ = false;
  // Wake the poll() so the loop observes running_ == false promptly.
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = write(wakePipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close(listenFd_);
  close(wakePipe_[0]);
  close(wakePipe_[1]);
  listenFd_ = -1;
  wakePipe_[0] = wakePipe_[1] = -1;
}

void StatusServer::serveLoop() {
  while (running_) {
    pollfd fds[2] = {{listenFd_, POLLIN, 0}, {wakePipe_[0], POLLIN, 0}};
    const int ready = poll(fds, 2, 500);
    if (ready <= 0) continue;
    if (fds[1].revents != 0) continue;  // wake for shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(listenFd_, nullptr, nullptr);
    if (fd < 0) continue;
    handleConnection(fd);
    close(fd);
  }
}

void StatusServer::handleConnection(int fd) {
  const std::string head = readRequestHead(fd);
  HttpRequest request;
  HttpResponse response;
  const std::size_t lineEnd = head.find("\r\n");
  std::istringstream line(head.substr(0, lineEnd));
  std::string version;
  if (!(line >> request.method >> request.path >> version)) {
    response = {400, "text/plain", "malformed request line\n"};
  } else if (request.method != "GET") {
    response = {405, "text/plain", "only GET is served here\n"};
  } else {
    if (const std::size_t q = request.path.find('?');
        q != std::string::npos) {
      request.query = request.path.substr(q + 1);
      request.path.resize(q);
    }
    response = handler_(request);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    obs::ScopedSpan span(&tracer_, "serve.endpoint");
    span.attr("route", request.path.empty() ? "(malformed)" : request.path);
    span.attr("status", std::to_string(response.status));
  }

  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << statusText(response.status)
      << "\r\nContent-Type: " << response.contentType
      << "\r\nContent-Length: " << response.body.size()
      << "\r\nConnection: close\r\n\r\n"
      << response.body;
  writeAll(fd, out.str());
}

std::string httpGet(const std::string& hostPort,
                    const std::string& pathQuery) {
  const sockaddr_in addr = resolveIpv4(parseHostPort(hostPort));
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("cannot create client socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    throw Error("cannot connect to endpoint '" + hostPort + "': " +
                std::strerror(errno));
  }
  const std::string request = "GET " + pathQuery +
                              " HTTP/1.1\r\nHost: " + hostPort +
                              "\r\nConnection: close\r\n\r\n";
  writeAll(fd, request);

  std::string response;
  char buffer[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  close(fd);

  const std::size_t headerEnd = response.find("\r\n\r\n");
  if (response.rfind("HTTP/1.", 0) != 0 || headerEnd == std::string::npos) {
    throw Error("malformed response from endpoint '" + hostPort + "'");
  }
  const std::string statusLine = response.substr(0, response.find("\r\n"));
  std::istringstream status(statusLine);
  std::string proto;
  int code = 0;
  status >> proto >> code;
  if (code < 200 || code >= 300) {
    throw Error("endpoint answered: " + statusLine);
  }
  return response.substr(headerEnd + 4);
}

}  // namespace rebench::telemetry
