// The serve daemon's live telemetry plane (rebench::telemetry).
//
// One TelemetryPlane per daemon run aggregates everything the HTTP
// status endpoint and `rebench status` can ask about:
//
//   * the event bus (bounded ring, crash flight recorder),
//   * a mirror of the daemon's report counters (processed, cached, ...)
//     published at safe points — the endpoint thread never reads the
//     daemon's live MetricsRegistry, which is mutated without locks,
//   * the in-flight submission + stage,
//   * a sequence-numbered verdict log (GET /verdicts?since=seq — the
//     "real transport" the ROADMAP left open),
//   * per-submission stage timelines (GET /submissions/<hash>).
//
// All HTTP rendering happens under the plane's mutex against copies of
// this state; /metrics builds a throwaway MetricsRegistry and reuses
// obs::renderOpenMetrics, so the exposition format has exactly one
// implementation in the codebase.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/telemetry/bus.hpp"
#include "core/telemetry/http.hpp"

namespace rebench::telemetry {

/// One filed verdict in the live stream.
struct VerdictNote {
  std::uint64_t seq = 0;  // bus sequence number of the verdict event
  std::string submission;
  std::string verdict;
  bool degraded = false;
  std::string detail;
};

class TelemetryPlane {
 public:
  explicit TelemetryPlane(std::size_t busCapacity = 256);

  EventBus& bus() { return bus_; }
  const EventBus& bus() const { return bus_; }

  // ---- producer side (the daemon, at safe points) ----------------------
  /// Publishes a stage event and updates the submission's timeline and
  /// the in-flight marker.  Returns the event's sequence number.
  std::uint64_t noteStage(const std::string& submission,
                          const std::string& kind, const std::string& stage,
                          obs::AttrMap attrs = {});
  /// Publishes the verdict event and appends to the verdict stream.
  std::uint64_t noteVerdict(const std::string& submission,
                            const std::string& verdict, bool degraded,
                            const std::string& detail);
  void noteRunCache(bool hit);
  void noteWatchdogFire();
  /// Mirror of one daemon report counter ("processed", "cached", ...).
  /// Ordered by first set, so /health renders fields in daemon order.
  void setStat(const std::string& key, long value);
  void setQueueDepth(int depth);
  void setQuarantinedKeys(std::vector<std::string> keys);
  /// Armed watchdogs (stage + submission deadlines configured), for the
  /// rebench_service_watchdog_arms gauge.
  void setWatchdogArms(int arms);
  void clearInflight();

  // ---- consumer side (endpoint thread, rebench status) -----------------
  /// {"schema":"rebench.serve_health_live/1",...} — a superset of
  /// QUEUE/health.json plus seq/uptime/in-flight/runcache state.
  std::string healthJson() const;
  /// OpenMetrics text: rebench_service_* families via renderOpenMetrics.
  std::string metricsText() const;
  /// JSONL verdict stream, seq > `since`, oldest first.
  std::string verdictsJsonl(std::uint64_t since) const;
  /// Stage timeline for one submission; false when unknown.
  bool submissionJson(const std::string& submission, std::string* out) const;

  /// Routes a status-endpoint request (/health, /metrics,
  /// /verdicts[?since=N], /submissions/<hash>).
  HttpResponse handle(const HttpRequest& request) const;

 private:
  struct TimelineEntry {
    std::uint64_t seq = 0;
    double wallSeconds = 0.0;
    std::string kind;
    std::string stage;
  };

  EventBus bus_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, long>> stats_;  // insertion-ordered
  std::vector<VerdictNote> verdicts_;
  std::map<std::string, std::vector<TimelineEntry>> timelines_;
  std::vector<std::string> quarantinedKeys_;
  std::string inflightSubmission_;
  std::string inflightStage_;
  long runCacheHits_ = 0;
  long runCacheMisses_ = 0;
  long watchdogFires_ = 0;
  int watchdogArms_ = 0;
  int queueDepth_ = 0;
};

}  // namespace rebench::telemetry
