// Per-stage resource accounting (rebench::telemetry).
//
// A ResourceProbe samples process resource usage around pipeline stages
// (build, run) and reports the delta: user/sys CPU time, max RSS, minor
// faults and block I/O.  Two sources:
//
//   sim   a deterministic synthetic source — every sample is a pure
//         function of (stage key, simulated seconds), so perflog/trace/
//         manifest bytes stay identical at any --jobs width.  This is
//         what the determinism gates run.
//   real  getrusage(RUSAGE_SELF) + /proc/self/statm deltas — genuinely
//         observed numbers for native deployments, at the documented
//         cost of jobs-dependent bytes (concurrent campaigns share one
//         process, so deltas interleave).
//
// Probe mode rides on the campaign invocation ("" = off, the default),
// so submissions, manifests and run-memoization keys all agree on
// whether resource facets exist: a probed campaign can never collide
// with an unprobed one in the RunCache.
#pragma once

#include <string>
#include <string_view>

namespace rebench::telemetry {

enum class ProbeMode { kOff, kSim, kReal };

/// Parses "" | "sim" | "real"; returns false on anything else.
bool probeModeFromName(std::string_view name, ProbeMode* mode);
std::string_view probeModeName(ProbeMode mode);

/// One stage's resource delta.
struct ResourceSample {
  double userMs = 0.0;    // user CPU time
  double sysMs = 0.0;     // system CPU time
  long maxRssKb = 0;      // peak resident set size
  long minorFaults = 0;   // soft page faults
  long ioBlocks = 0;      // block input + output operations
};

class ResourceProbe {
 public:
  explicit ResourceProbe(ProbeMode mode) : mode_(mode) {}

  ProbeMode mode() const { return mode_; }
  bool active() const { return mode_ != ProbeMode::kOff; }

  /// A point-in-time snapshot (real mode) to diff against later.
  struct Mark {
    double userMs = 0.0;
    double sysMs = 0.0;
    long maxRssKb = 0;
    long minorFaults = 0;
    long ioBlocks = 0;
  };

  /// Samples the current process usage (real mode; zeros in sim/off).
  Mark mark() const;

  /// The stage's resource delta.  Sim mode ignores the mark and derives
  /// the sample from hash(key) and `simSeconds` — deterministic at any
  /// scheduling; real mode diffs current usage against `mark`.
  ResourceSample delta(const Mark& mark, std::string_view key,
                       double simSeconds) const;

 private:
  ProbeMode mode_;
};

}  // namespace rebench::telemetry
