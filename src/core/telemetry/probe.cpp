#include "core/telemetry/probe.hpp"

#include <algorithm>

#include "core/util/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define REBENCH_HAVE_GETRUSAGE 1
#endif

#if defined(__linux__)
#include <fstream>
#endif

namespace rebench::telemetry {

bool probeModeFromName(std::string_view name, ProbeMode* mode) {
  if (name.empty()) {
    *mode = ProbeMode::kOff;
  } else if (name == "sim") {
    *mode = ProbeMode::kSim;
  } else if (name == "real") {
    *mode = ProbeMode::kReal;
  } else {
    return false;
  }
  return true;
}

std::string_view probeModeName(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kSim:
      return "sim";
    case ProbeMode::kReal:
      return "real";
    case ProbeMode::kOff:
      break;
  }
  return "";
}

namespace {

#if defined(REBENCH_HAVE_GETRUSAGE)
ResourceProbe::Mark usageNow() {
  ResourceProbe::Mark mark;
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return mark;
  mark.userMs = usage.ru_utime.tv_sec * 1000.0 + usage.ru_utime.tv_usec / 1e3;
  mark.sysMs = usage.ru_stime.tv_sec * 1000.0 + usage.ru_stime.tv_usec / 1e3;
  mark.maxRssKb = usage.ru_maxrss;
  mark.minorFaults = usage.ru_minflt;
  mark.ioBlocks = usage.ru_inblock + usage.ru_oublock;
  return mark;
}
#else
ResourceProbe::Mark usageNow() { return {}; }
#endif

#if defined(__linux__)
/// Current resident set in KiB from /proc/self/statm (getrusage only
/// reports the *peak*, which never shrinks between stages).
long residentKbNow() {
  std::ifstream statm("/proc/self/statm");
  long sizePages = 0;
  long residentPages = 0;
  if (!(statm >> sizePages >> residentPages)) return 0;
  return residentPages * 4;  // page size is 4 KiB on every target we build
}
#else
long residentKbNow() { return 0; }
#endif

}  // namespace

ResourceProbe::Mark ResourceProbe::mark() const {
  if (mode_ != ProbeMode::kReal) return {};
  return usageNow();
}

ResourceSample ResourceProbe::delta(const Mark& mark, std::string_view key,
                                    double simSeconds) const {
  ResourceSample sample;
  if (mode_ == ProbeMode::kSim) {
    // Synthetic but plausible: CPU split and memory derive from the
    // stage key's hash, scaled by simulated seconds — a pure function
    // of campaign identity, never of scheduling.
    Hasher hasher;
    hasher.update("rebench.probe.sim/1");
    hasher.update(key);
    const std::uint64_t digest = hasher.digest();
    const double userShare = 0.55 + static_cast<double>(digest % 400) / 1000.0;
    const double busyMs = std::max(simSeconds, 0.0) * 1000.0;
    sample.userMs = busyMs * userShare;
    sample.sysMs = busyMs * (1.0 - userShare);
    sample.maxRssKb = 16384 + static_cast<long>((digest >> 16) % 65536);
    sample.minorFaults = 100 + static_cast<long>((digest >> 32) % 10000);
    sample.ioBlocks = static_cast<long>((digest >> 48) % 512);
    return sample;
  }
  if (mode_ == ProbeMode::kReal) {
    const Mark now = usageNow();
    sample.userMs = std::max(now.userMs - mark.userMs, 0.0);
    sample.sysMs = std::max(now.sysMs - mark.sysMs, 0.0);
    sample.maxRssKb = std::max(now.maxRssKb, residentKbNow());
    sample.minorFaults = std::max(now.minorFaults - mark.minorFaults, 0L);
    sample.ioBlocks = std::max(now.ioBlocks - mark.ioBlocks, 0L);
  }
  return sample;
}

}  // namespace rebench::telemetry
