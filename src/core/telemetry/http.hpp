// Embedded HTTP/1.1 status endpoint (rebench::telemetry).
//
// `rebench serve --listen HOST:PORT` exposes the telemetry plane over
// the smallest HTTP server that can honestly claim the name: one
// listening socket, a blocking poll() loop on a dedicated thread, one
// request per connection (Connection: close), no dependencies beyond
// POSIX sockets.  The handler is a plain callback — the server knows
// nothing about routes; rebench::service wires it to the plane.
//
// Port 0 asks the kernel for an ephemeral port; the bound address is
// reported via boundAddress() and written by the daemon to
// QUEUE/endpoint.addr so tests and `rebench status` can discover it
// without parsing logs.
//
// Every request is recorded as a `serve.endpoint` span (route + status
// attributes — the trace_lint contract) on a wall-clock tracer owned by
// the server.  That trace is written to QUEUE/endpoint-trace.jsonl at
// shutdown, deliberately separate from the campaign trace: endpoint
// traffic is wall-clock and operator-driven, so it must never touch
// byte-deterministic artifacts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "core/obs/trace.hpp"

namespace rebench::telemetry {

struct HttpRequest {
  std::string method;
  std::string path;   // without the query string
  std::string query;  // after '?', "" when none
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "application/json";
  std::string body;
};

class StatusServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit StatusServer(Handler handler);
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Parses "HOST:PORT" (port 0 = ephemeral), binds, and starts the
  /// serving thread.  Throws rebench::Error on bind failure.
  void start(const std::string& listen);

  /// "HOST:PORT" with the real port ("" before start()).
  const std::string& boundAddress() const { return boundAddress_; }

  /// Closes the socket and joins the serving thread (idempotent).
  void stop();

  bool running() const { return running_; }
  std::uint64_t requestCount() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// The wall-clock request trace (one serve.endpoint span per request).
  /// Only valid to serialize after stop().
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  void serveLoop();
  void handleConnection(int fd);

  Handler handler_;
  obs::Tracer tracer_;
  std::thread thread_;
  std::atomic<std::uint64_t> requests_{0};
  std::string boundAddress_;
  int listenFd_ = -1;
  int wakePipe_[2] = {-1, -1};
  bool running_ = false;
};

/// Minimal blocking HTTP GET ("HOST:PORT", "/path?query"): returns the
/// response body; throws rebench::Error on connect/protocol failure or
/// a non-2xx status (the status line is in the message).  This is the
/// in-test client and the engine behind `rebench status --fetch`.
std::string httpGet(const std::string& hostPort,
                    const std::string& pathQuery);

}  // namespace rebench::telemetry
