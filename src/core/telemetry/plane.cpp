#include "core/telemetry/plane.hpp"

#include <sstream>

#include "core/obs/json.hpp"
#include "core/obs/openmetrics.hpp"
#include "core/util/strings.hpp"

namespace rebench::telemetry {

TelemetryPlane::TelemetryPlane(std::size_t busCapacity) : bus_(busCapacity) {}

std::uint64_t TelemetryPlane::noteStage(const std::string& submission,
                                        const std::string& kind,
                                        const std::string& stage,
                                        obs::AttrMap attrs) {
  double wallSeconds = 0.0;
  const std::uint64_t seq =
      bus_.publish(kind, submission, stage, attrs, &wallSeconds);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!submission.empty()) {
    TimelineEntry entry;
    entry.seq = seq;
    entry.kind = kind;
    entry.stage = stage;
    entry.wallSeconds = wallSeconds;
    timelines_[submission].push_back(std::move(entry));
    inflightSubmission_ = submission;
    inflightStage_ = stage;
  }
  return seq;
}

std::uint64_t TelemetryPlane::noteVerdict(const std::string& submission,
                                          const std::string& verdict,
                                          bool degraded,
                                          const std::string& detail) {
  const std::uint64_t seq =
      noteStage(submission, "verdict", verdict,
                {{"degraded", degraded ? "true" : "false"}});
  std::lock_guard<std::mutex> lock(mutex_);
  VerdictNote note;
  note.seq = seq;
  note.submission = submission;
  note.verdict = verdict;
  note.degraded = degraded;
  note.detail = detail;
  verdicts_.push_back(std::move(note));
  return seq;
}

void TelemetryPlane::noteRunCache(bool hit) {
  bus_.publish("runcache", "", hit ? "hit" : "miss");
  std::lock_guard<std::mutex> lock(mutex_);
  (hit ? runCacheHits_ : runCacheMisses_)++;
}

void TelemetryPlane::noteWatchdogFire() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++watchdogFires_;
}

void TelemetryPlane::setStat(const std::string& key, long value) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, stored] : stats_) {
    if (name == key) {
      stored = value;
      return;
    }
  }
  stats_.emplace_back(key, value);
}

void TelemetryPlane::setQueueDepth(int depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  queueDepth_ = depth;
}

void TelemetryPlane::setQuarantinedKeys(std::vector<std::string> keys) {
  std::lock_guard<std::mutex> lock(mutex_);
  quarantinedKeys_ = std::move(keys);
}

void TelemetryPlane::setWatchdogArms(int arms) {
  std::lock_guard<std::mutex> lock(mutex_);
  watchdogArms_ = arms;
}

void TelemetryPlane::clearInflight() {
  std::lock_guard<std::mutex> lock(mutex_);
  inflightSubmission_.clear();
  inflightStage_.clear();
}

std::string TelemetryPlane::healthJson() const {
  const std::uint64_t seq = bus_.lastSeq();
  const std::vector<TelemetryEvent> recent = bus_.snapshot();
  const double uptime = recent.empty() ? 0.0 : recent.back().wallSeconds;
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"schema\":\"rebench.serve_health_live/1\""
      << ",\"seq\":" << seq << ",\"uptime_seconds\":" << str::fixed(uptime, 3);
  for (const auto& [key, value] : stats_) {
    out << "," << obs::json::quote(key) << ":" << value;
  }
  out << ",\"queue_depth\":" << queueDepth_
      << ",\"runcache_hits\":" << runCacheHits_
      << ",\"runcache_misses\":" << runCacheMisses_
      << ",\"watchdog_arms\":" << watchdogArms_
      << ",\"inflight_submission\":" << obs::json::quote(inflightSubmission_)
      << ",\"inflight_stage\":" << obs::json::quote(inflightStage_)
      << ",\"verdicts\":" << verdicts_.size() << ",\"quarantined_keys\":[";
  for (std::size_t i = 0; i < quarantinedKeys_.size(); ++i) {
    if (i > 0) out << ",";
    out << obs::json::quote(quarantinedKeys_[i]);
  }
  out << "]}\n";
  return out.str();
}

std::string TelemetryPlane::metricsText() const {
  const std::uint64_t seq = bus_.lastSeq();
  const std::vector<TelemetryEvent> recent = bus_.snapshot();
  const double uptime = recent.empty() ? 0.0 : recent.back().wallSeconds;
  // A throwaway registry rendered through the one OpenMetrics
  // implementation — the endpoint never exposes the daemon's live
  // registry, which its thread may be mutating.
  obs::MetricsRegistry registry;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : stats_) {
    registry.counter("service.report/" + key)
        .inc(static_cast<std::uint64_t>(value < 0 ? 0 : value));
  }
  registry.counter("service.bus_events").inc(seq);
  registry.counter("service.runcache/hit")
      .inc(static_cast<std::uint64_t>(runCacheHits_));
  registry.counter("service.runcache/miss")
      .inc(static_cast<std::uint64_t>(runCacheMisses_));
  registry.counter("service.watchdog_fires")
      .inc(static_cast<std::uint64_t>(watchdogFires_));
  registry.gauge("service.queue_depth")
      .set(static_cast<double>(queueDepth_));
  registry.gauge("service.inflight").set(inflightSubmission_.empty() ? 0 : 1);
  const long lookups = runCacheHits_ + runCacheMisses_;
  registry.gauge("service.runcache_hit_ratio")
      .set(lookups == 0 ? 0.0
                        : static_cast<double>(runCacheHits_) /
                              static_cast<double>(lookups));
  registry.gauge("service.watchdog_arms")
      .set(static_cast<double>(watchdogArms_));
  registry.gauge("service.uptime_seconds").set(uptime);
  return obs::renderOpenMetrics(registry);
}

std::string TelemetryPlane::verdictsJsonl(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const VerdictNote& note : verdicts_) {
    if (note.seq <= since) continue;
    out << "{\"seq\":" << note.seq
        << ",\"submission\":" << obs::json::quote(note.submission)
        << ",\"verdict\":" << obs::json::quote(note.verdict)
        << ",\"degraded\":" << (note.degraded ? "true" : "false")
        << ",\"detail\":" << obs::json::quote(note.detail) << "}\n";
  }
  return out.str();
}

bool TelemetryPlane::submissionJson(const std::string& submission,
                                    std::string* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timelines_.find(submission);
  if (it == timelines_.end()) return false;
  std::ostringstream body;
  body << "{\"submission\":" << obs::json::quote(submission)
       << ",\"timeline\":[";
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    const TimelineEntry& entry = it->second[i];
    if (i > 0) body << ",";
    body << "{\"seq\":" << entry.seq
         << ",\"t\":" << str::fixed(entry.wallSeconds, 6)
         << ",\"kind\":" << obs::json::quote(entry.kind)
         << ",\"stage\":" << obs::json::quote(entry.stage) << "}";
  }
  body << "]}\n";
  *out = body.str();
  return true;
}

HttpResponse TelemetryPlane::handle(const HttpRequest& request) const {
  if (request.path == "/health") {
    return {200, "application/json", healthJson()};
  }
  if (request.path == "/metrics") {
    return {200, "application/openmetrics-text; version=1.0.0",
            metricsText()};
  }
  if (request.path == "/verdicts") {
    std::uint64_t since = 0;
    if (request.query.rfind("since=", 0) == 0) {
      try {
        since = std::stoull(request.query.substr(6));
      } catch (const std::exception&) {
        return {400, "text/plain", "bad since= value\n"};
      }
    }
    return {200, "application/jsonl", verdictsJsonl(since)};
  }
  if (request.path.rfind("/submissions/", 0) == 0) {
    const std::string id = request.path.substr(13);
    std::string body;
    if (!submissionJson(id, &body)) {
      return {404, "text/plain", "unknown submission '" + id + "'\n"};
    }
    return {200, "application/json", body};
  }
  return {404, "text/plain",
          "routes: /health /metrics /verdicts[?since=N] "
          "/submissions/<hash>\n"};
}

}  // namespace rebench::telemetry
