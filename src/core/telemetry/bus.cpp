#include "core/telemetry/bus.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/obs/json.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::telemetry {

namespace fs = std::filesystem;

std::string renderEvent(const TelemetryEvent& event) {
  std::ostringstream out;
  out << "{\"seq\":" << event.seq
      << ",\"t\":" << str::fixed(event.wallSeconds, 6)
      << ",\"kind\":" << obs::json::quote(event.kind)
      << ",\"submission\":" << obs::json::quote(event.submission)
      << ",\"stage\":" << obs::json::quote(event.stage);
  if (!event.attrs.empty()) {
    out << ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : event.attrs) {
      if (!first) out << ",";
      first = false;
      out << obs::json::quote(key) << ":" << obs::json::quote(value);
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

EventBus::EventBus(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t EventBus::publish(std::string kind, std::string submission,
                                std::string stage, obs::AttrMap attrs,
                                double* wallSecondsOut) {
  TelemetryEvent event;
  event.seq = nextSeq_.fetch_add(1, std::memory_order_relaxed);
  event.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  if (wallSecondsOut != nullptr) *wallSecondsOut = event.wallSeconds;
  event.kind = std::move(kind);
  event.submission = std::move(submission);
  event.stage = std::move(stage);
  event.attrs = std::move(attrs);
  const std::uint64_t seq = event.seq;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.push_back(std::move(event));
    while (ring_.size() > capacity_) {
      ring_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return seq;
}

std::uint64_t EventBus::lastSeq() const {
  return nextSeq_.load(std::memory_order_relaxed) - 1;
}

std::uint64_t EventBus::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

std::vector<TelemetryEvent> EventBus::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<TelemetryEvent> EventBus::since(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TelemetryEvent> out;
  for (const TelemetryEvent& event : ring_) {
    if (event.seq > seq) out.push_back(event);
  }
  return out;
}

std::string dumpFlightRecord(const std::string& queueDir,
                             const EventBus& bus) {
  const std::vector<TelemetryEvent> events = bus.snapshot();
  if (events.empty()) return "";
  std::ostringstream body;
  body << "{\"schema\":" << obs::json::quote(kFlightRecordSchema)
       << ",\"events\":" << events.size()
       << ",\"dropped\":" << bus.dropped() << "}\n";
  for (const TelemetryEvent& event : events) {
    body << renderEvent(event) << "\n";
  }
  fs::create_directories(queueDir);
  const fs::path path =
      fs::path(queueDir) /
      ("flightrec-" + std::to_string(events.back().seq) + ".jsonl");
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot write flight record '" + tmp.string() + "'");
    }
    out << body.str();
  }
  fs::rename(tmp, path);
  return path.string();
}

}  // namespace rebench::telemetry
