// In-process telemetry event bus (rebench::telemetry).
//
// The live spine of the serve daemon's observability plane: every
// interesting moment — a journal checkpoint, a RunCache hit, a watchdog
// fire, a verdict — is published as a sequence-numbered TelemetryEvent
// into a bounded multi-producer ring.  The ring is deliberately small
// and lossy (old events fall off the back): it is a *flight recorder*,
// not a log.  Consumers are the HTTP status endpoint (live snapshots),
// `rebench status` (TTY view) and the crash path, which dumps the ring
// to QUEUE/flightrec-<seq>.jsonl so a post-mortem can see the daemon's
// last N moves next to the journal's claimed state.
//
// Determinism contract: nothing here feeds byte-deterministic artifacts.
// Events carry wall-clock offsets and land only in flightrec/endpoint
// files, never in perflogs, traces, manifests or verdicts — publishing
// is therefore always safe, at any --jobs width, endpoint on or off.
//
// Concurrency: sequence numbers come from one atomic counter; the ring
// itself is guarded by a mutex held only for the O(1) push/copy — the
// publish path never blocks on I/O or allocation beyond the event's own
// strings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/obs/trace.hpp"

namespace rebench::telemetry {

inline constexpr std::string_view kFlightRecordSchema =
    "rebench.flightrec/1";

/// One bus event.  `kind` buckets the producer ("journal", "runcache",
/// "verdict", "watchdog", "exec", "service", "endpoint"); `stage` names
/// the step inside it; attrs carry the rest.
struct TelemetryEvent {
  std::uint64_t seq = 0;
  double wallSeconds = 0.0;  // seconds since the bus was created
  std::string kind;
  std::string submission;  // "" when not submission-scoped
  std::string stage;
  obs::AttrMap attrs;
};

/// One-line JSON rendering (deterministic key order; attrs sorted by
/// the AttrMap). Parsed back by `rebench status` for the TTY view.
std::string renderEvent(const TelemetryEvent& event);

class EventBus {
 public:
  /// `capacity` bounds the ring; older events are dropped.
  explicit EventBus(std::size_t capacity = 256);

  /// Publishes an event; returns its sequence number.  Thread-safe.
  /// `wallSecondsOut`, when non-null, receives the event's wall offset.
  std::uint64_t publish(std::string kind, std::string submission,
                        std::string stage, obs::AttrMap attrs = {},
                        double* wallSecondsOut = nullptr);

  /// Highest sequence number handed out so far (0 = none).
  std::uint64_t lastSeq() const;
  /// Events dropped off the back of the ring.
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  /// Copies the ring contents, oldest first.
  std::vector<TelemetryEvent> snapshot() const;
  /// Ring events with seq > `seq`, oldest first.
  std::vector<TelemetryEvent> since(std::uint64_t seq) const;

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> nextSeq_{1};
  std::atomic<std::uint64_t> dropped_{0};
  std::deque<TelemetryEvent> ring_;
};

/// Dumps the ring to QUEUE/flightrec-<lastseq>.jsonl (schema meta line,
/// then one event per line, oldest first) via tmp + rename so readers
/// never observe a torn record.  Returns the path written ("" when the
/// ring is empty — no flight record is better than an empty one).
std::string dumpFlightRecord(const std::string& queueDir,
                             const EventBus& bus);

}  // namespace rebench::telemetry
