// Roofline execution model: predicts kernel time on a MachineModel from
// the kernel's measured byte/flop footprint.
#pragma once

#include <optional>
#include <string>

#include "sim/machine.hpp"

namespace rebench {

/// Footprint of one kernel invocation (counted by instrumented code, not
/// guessed): bytes that must cross the memory interface and double-
/// precision flops executed.
struct KernelProfile {
  double bytesRead = 0.0;
  double bytesWritten = 0.0;
  double flops = 0.0;

  double totalBytes() const { return bytesRead + bytesWritten; }
  /// Arithmetic intensity, flops per byte.
  double intensity() const {
    const double b = totalBytes();
    return b > 0.0 ? flops / b : 0.0;
  }
};

/// Per-(model, platform) execution efficiency knobs.  The programming-model
/// maturity data behind Figure 2 is expressed through these.
struct ExecutionEfficiency {
  /// Fraction of the machine's *stream-achievable* bandwidth realised.
  double bandwidthFraction = 1.0;
  /// Fraction of peak flops realised for compute-bound phases.
  double computeFraction = 0.6;
  /// Number of cores actually used (0 = all); single-threaded backends
  /// (std-ranges in the paper) set this to 1.
  int coresUsed = 0;
  /// Extra fixed overhead per kernel launch (runtime abstraction cost).
  double extraLatency = 0.0;
};

struct SimulatedTime {
  double seconds = 0.0;
  bool memoryBound = true;
  double achievedBandwidthGBs = 0.0;
  double achievedGFlops = 0.0;
};

/// Predicts execution time of `profile` on `machine` under `eff`.
/// `noiseKey` (when non-empty) applies deterministic run-to-run noise
/// derived from the key, so repeated experiments replay identically.
SimulatedTime simulateKernel(const MachineModel& machine,
                             const KernelProfile& profile,
                             const ExecutionEfficiency& eff = {},
                             const std::string& noiseKey = {},
                             double noiseSigma = 0.015);

}  // namespace rebench
