#include "sim/roofline.hpp"

#include <algorithm>

#include "core/util/error.hpp"
#include "core/util/rng.hpp"

namespace rebench {

SimulatedTime simulateKernel(const MachineModel& machine,
                             const KernelProfile& profile,
                             const ExecutionEfficiency& eff,
                             const std::string& noiseKey,
                             double noiseSigma) {
  REBENCH_REQUIRE(machine.peakBandwidthGBs > 0.0);

  // Memory ceiling: stream-achievable bandwidth, derated by the model's
  // bandwidth fraction, and capped by the cores actually driving memory.
  double bandwidth =
      machine.peakBandwidthGBs * machine.streamEfficiency *
      std::clamp(eff.bandwidthFraction, 0.0, 1.25);
  if (eff.coresUsed > 0) {
    // Bandwidth saturates with roughly sqrt-like core scaling; a single
    // core is bounded by singleCoreBandwidthGBs, and ~1/4 of the cores
    // already reach saturation on the modelled platforms.
    const double saturating =
        std::max(1.0, machine.totalCores() / 4.0);
    const double scale =
        std::min(1.0, static_cast<double>(eff.coresUsed) / saturating);
    const double coreBound = machine.singleCoreBandwidthGBs * eff.coresUsed;
    bandwidth = std::min({bandwidth * std::max(scale, 1e-9), coreBound,
                          bandwidth});
    bandwidth = std::min(bandwidth, coreBound);
  }
  bandwidth = std::max(bandwidth, 1e-3);

  // Compute ceiling.
  double peakFlops = machine.peakGFlops() * 1.0e9 *
                     std::clamp(eff.computeFraction, 0.0, 1.0);
  if (eff.coresUsed > 0) {
    peakFlops *= std::min(
        1.0, static_cast<double>(eff.coresUsed) / machine.totalCores());
  }
  peakFlops = std::max(peakFlops, 1.0);

  const double memTime = profile.totalBytes() / (bandwidth * 1.0e9);
  const double compTime = profile.flops / peakFlops;

  SimulatedTime out;
  out.memoryBound = memTime >= compTime;
  double seconds = std::max(memTime, compTime) + machine.launchLatency +
                   eff.extraLatency;
  if (!noiseKey.empty() && noiseSigma > 0.0) {
    Rng rng = Rng::fromKey(noiseKey);
    seconds *= rng.noiseFactor(noiseSigma);
  }
  out.seconds = seconds;
  if (seconds > 0.0) {
    out.achievedBandwidthGBs = profile.totalBytes() / seconds / 1.0e9;
    out.achievedGFlops = profile.flops / seconds / 1.0e9;
  }
  return out;
}

}  // namespace rebench
