// Machine models — the hardware substitution layer.
//
// The paper measured on seven physical platforms (Tables 1 & 5).  None are
// available here, so each is described by a roofline-style model: peak
// memory bandwidth, peak double-precision compute, cache capacity, and
// kernel-launch latency.  Kernels execute natively for correctness at small
// sizes; their *timing at paper scale* is supplied by these models, so the
// efficiency shapes of Figure 2 and Tables 2/4 are reproducible on any
// host.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rebench {

enum class DeviceType { kCpu, kGpu };

struct MachineModel {
  std::string id;           // registry key, e.g. "clx-6230"
  std::string displayName;  // "Intel Cascade Lake (Xeon Gold 6230)"
  std::string vendor;
  DeviceType device = DeviceType::kCpu;

  int sockets = 2;
  int coresPerSocket = 0;   // CUs/SMs for GPUs
  double clockGhz = 0.0;
  /// Double-precision flops per cycle per core (FMA width × units × 2).
  double flopsPerCyclePerCore = 16.0;

  /// Aggregate theoretical peak memory bandwidth, GB/s (Table 1).
  double peakBandwidthGBs = 0.0;
  /// Fraction of peak a perfectly-written streaming kernel sustains
  /// (hardware limit: page misses, refresh, RFO traffic...).
  double streamEfficiency = 0.88;
  /// Aggregate last-level cache, MB (decides the 2^25 vs 2^29 array rule).
  double llcMegabytes = 0.0;
  /// Per-kernel launch/synchronisation latency, seconds.
  double launchLatency = 2.0e-6;
  /// Single-core sustainable memory bandwidth, GB/s (bounds any
  /// single-threaded programming model, e.g. std-ranges in Fig. 2).
  double singleCoreBandwidthGBs = 12.0;

  /// Power model (for the paper's future-work energy capture): package
  /// power at full load and at idle, watts per socket/device.
  double tdpWattsPerSocket = 200.0;
  double idleWattsPerSocket = 60.0;

  int totalCores() const { return sockets * coresPerSocket; }
  /// Aggregate peak double-precision GFlop/s.
  double peakGFlops() const {
    return totalCores() * clockGhz * flopsPerCyclePerCore;
  }
  double maxPowerWatts() const { return sockets * tdpWattsPerSocket; }
  double idlePowerWatts() const { return sockets * idleWattsPerSocket; }
};

/// Registry of the paper's platforms, keyed by model id.
class MachineRegistry {
 public:
  void add(MachineModel model);
  const MachineModel& get(std::string_view id) const;
  bool has(std::string_view id) const;
  std::vector<std::string> ids() const;

 private:
  std::map<std::string, MachineModel, std::less<>> models_;
};

/// Models for: clx-6230, clx-8276, rome-7742, rome-7h12, milan-7763,
/// thunderx2, v100 (peaks taken from the paper's Tables 1 & 5).
const MachineRegistry& builtinMachines();

}  // namespace rebench
