#include "sim/machine.hpp"

#include <vector>

#include "core/util/error.hpp"

namespace rebench {

void MachineRegistry::add(MachineModel model) {
  models_.insert_or_assign(model.id, std::move(model));
}

const MachineModel& MachineRegistry::get(std::string_view id) const {
  auto it = models_.find(id);
  if (it == models_.end()) {
    throw NotFoundError("unknown machine model '" + std::string(id) + "'");
  }
  return it->second;
}

bool MachineRegistry::has(std::string_view id) const {
  return models_.find(id) != models_.end();
}

std::vector<std::string> MachineRegistry::ids() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [id, model] : models_) out.push_back(id);
  return out;
}

const MachineRegistry& builtinMachines() {
  static const MachineRegistry registry = [] {
    MachineRegistry reg;

    // Intel Xeon Gold 6230 (Isambard MACS).  Table 1: 2 x 140.784 GB/s.
    MachineModel clx6230;
    clx6230.id = "clx-6230";
    clx6230.displayName = "Intel Cascade Lake (Xeon Gold 6230)";
    clx6230.vendor = "Intel";
    clx6230.sockets = 2;
    clx6230.coresPerSocket = 20;
    clx6230.clockGhz = 2.1;
    clx6230.flopsPerCyclePerCore = 32.0;  // AVX-512, 2 FMA units
    clx6230.peakBandwidthGBs = 281.568;
    clx6230.streamEfficiency = 0.80;
    clx6230.llcMegabytes = 2 * 27.5;
    clx6230.singleCoreBandwidthGBs = 13.0;
    clx6230.tdpWattsPerSocket = 125.0;
    clx6230.idleWattsPerSocket = 45.0;
    reg.add(clx6230);

    // Intel Xeon Platinum 8276 (CSD3).  Same memory subsystem as 6230.
    MachineModel clx8276 = clx6230;
    clx8276.id = "clx-8276";
    clx8276.displayName = "Intel Cascade Lake (Xeon Platinum 8276)";
    clx8276.coresPerSocket = 28;
    clx8276.clockGhz = 2.2;
    clx8276.llcMegabytes = 2 * 38.5;
    reg.add(clx8276);

    // Marvell ThunderX2 (Isambard XCI).  Table 1: 288 GB/s peak.
    MachineModel tx2;
    tx2.id = "thunderx2";
    tx2.displayName = "Marvell ThunderX2 CN9980";
    tx2.vendor = "Marvell";
    tx2.sockets = 2;
    tx2.coresPerSocket = 32;
    tx2.clockGhz = 2.5;
    tx2.flopsPerCyclePerCore = 8.0;  // 2x128-bit NEON FMA
    tx2.peakBandwidthGBs = 288.0;
    tx2.streamEfficiency = 0.82;
    tx2.llcMegabytes = 2 * 32.0;
    tx2.singleCoreBandwidthGBs = 10.0;
    tx2.tdpWattsPerSocket = 180.0;
    tx2.idleWattsPerSocket = 60.0;
    reg.add(tx2);

    // AMD EPYC 7742 "Rome" (ARCHER2).  8ch DDR4-3200 per socket.
    MachineModel rome7742;
    rome7742.id = "rome-7742";
    rome7742.displayName = "AMD EPYC 7742 (Rome)";
    rome7742.vendor = "AMD";
    rome7742.sockets = 2;
    rome7742.coresPerSocket = 64;
    rome7742.clockGhz = 2.25;
    rome7742.flopsPerCyclePerCore = 16.0;  // 2x256-bit FMA
    rome7742.peakBandwidthGBs = 409.6;
    rome7742.streamEfficiency = 0.85;
    rome7742.llcMegabytes = 2 * 256.0;
    rome7742.singleCoreBandwidthGBs = 14.0;
    rome7742.tdpWattsPerSocket = 225.0;
    rome7742.idleWattsPerSocket = 75.0;
    reg.add(rome7742);

    // AMD EPYC 7H12 "Rome" (COSMA8).
    MachineModel rome7h12 = rome7742;
    rome7h12.id = "rome-7h12";
    rome7h12.displayName = "AMD EPYC 7H12 (Rome)";
    rome7h12.clockGhz = 2.6;
    reg.add(rome7h12);

    // AMD EPYC 7763 "Milan" (Noctua2).  Table 1: 2 x 204.8 GB/s.
    MachineModel milan = rome7742;
    milan.id = "milan-7763";
    milan.displayName = "AMD EPYC 7763 (Milan)";
    milan.clockGhz = 2.45;
    milan.streamEfficiency = 0.86;
    milan.singleCoreBandwidthGBs = 16.0;
    reg.add(milan);

    // NVIDIA V100 PCIe 16 GB (Isambard MACS).  Table 1: 900 GB/s.
    MachineModel v100;
    v100.id = "v100";
    v100.displayName = "NVIDIA Tesla V100 PCIe 16GB";
    v100.vendor = "NVIDIA";
    v100.device = DeviceType::kGpu;
    v100.sockets = 1;
    v100.coresPerSocket = 80;  // SMs
    v100.clockGhz = 1.245;
    v100.flopsPerCyclePerCore = 64.0;  // 32 DP units x FMA per SM
    v100.peakBandwidthGBs = 900.0;
    v100.streamEfficiency = 0.93;  // HBM2 sustains close to peak
    v100.llcMegabytes = 6.0;
    v100.launchLatency = 8.0e-6;
    v100.singleCoreBandwidthGBs = 25.0;
    v100.tdpWattsPerSocket = 250.0;
    v100.idleWattsPerSocket = 40.0;
    reg.add(v100);

    return reg;
  }();
  return registry;
}

}  // namespace rebench
