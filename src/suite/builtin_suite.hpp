// The benchmark suite shipped with rebench — the analogue of the
// `benchmarks/apps/` tree of the paper's excalibur-tests repository.
#pragma once

#include "core/framework/suite.hpp"

namespace rebench {

/// Every BabelStream programming model (tags: "babelstream", the model id,
/// and "omp"-style per-model tags), the four HPCG variants (tags: "hpcg",
/// the variant name), and HPGMG-FV (tag: "hpgmg").
TestSuite builtinSuite();

}  // namespace rebench
