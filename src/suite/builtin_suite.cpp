#include "suite/builtin_suite.hpp"

#include "babelstream/models.hpp"
#include "babelstream/testcase.hpp"
#include "hpcg/testcase.hpp"
#include "hpgmg/testcase.hpp"
#include "osu/testcase.hpp"

namespace rebench {

TestSuite builtinSuite() {
  TestSuite suite;
  for (const babelstream::ProgrammingModel& model :
       babelstream::figure2Models()) {
    babelstream::BabelstreamTestOptions options;
    options.model = model.id;
    suite.add(babelstream::makeBabelstreamTest(options),
              {"babelstream", model.id});
  }
  for (hpcg::Variant variant :
       {hpcg::Variant::kCsr, hpcg::Variant::kCsrOpt,
        hpcg::Variant::kMatrixFree, hpcg::Variant::kLfric}) {
    hpcg::HpcgTestOptions options;
    options.variant = variant;
    suite.add(hpcg::makeHpcgTest(options),
              {"hpcg", std::string(hpcg::variantName(variant))});
  }
  suite.add(hpgmg::makeHpgmgTest({}), {"hpgmg"});
  for (osu::OsuBenchmark benchmark :
       {osu::OsuBenchmark::kLatency, osu::OsuBenchmark::kBandwidth,
        osu::OsuBenchmark::kAllreduce}) {
    osu::OsuTestOptions options;
    options.benchmark = benchmark;
    suite.add(osu::makeOsuTest(options),
              {"osu", std::string(osu::osuBenchmarkName(benchmark))});
  }
  return suite;
}

}  // namespace rebench
