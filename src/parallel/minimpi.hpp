// minimpi: a rank-per-thread message-passing layer.
//
// The paper's HPCG and HPGMG case studies run "MPI only".  This layer
// reproduces the MPI structure those solvers need — point-to-point sends
// with tags, barriers, reductions, gathers, broadcasts and Cartesian
// decomposition — with ranks mapped to threads of one process.  The
// programming model is deliberately the same as MPI's so the solver code
// reads like its real counterpart.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <vector>

namespace rebench::minimpi {

namespace detail {

struct Message {
  std::vector<std::byte> data;
};

/// Shared state for one communicator's ranks.
class World {
 public:
  explicit World(int size);

  void post(int src, int dst, int tag, std::vector<std::byte> data);
  std::vector<std::byte> await(int src, int dst, int tag);

  void barrier();

  /// All-to-all scratch used by collectives: slot per rank.
  std::vector<double>& scratch() { return scratch_; }

  int size() const { return size_; }

 private:
  int size_;
  std::mutex mutex_;
  std::condition_variable arrived_;
  // Mailboxes keyed by (dst, src, tag); FIFO per key preserves MPI's
  // non-overtaking guarantee.
  std::map<std::tuple<int, int, int>, std::vector<Message>> mailboxes_;

  // Sense-reversing barrier.
  std::mutex barrierMutex_;
  std::condition_variable barrierCv_;
  int barrierCount_ = 0;
  bool barrierSense_ = false;

  std::vector<double> scratch_;
};

}  // namespace detail

enum class Op { kSum, kMin, kMax };

/// Handle a rank uses to communicate; cheap to copy within the rank.
class Comm {
 public:
  Comm(std::shared_ptr<detail::World> world, int rank)
      : world_(std::move(world)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }

  // ---- point to point (blocking, copying) -------------------------------
  void sendBytes(int dest, int tag, std::span<const std::byte> data);
  std::vector<std::byte> recvBytes(int src, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    sendBytes(dest, tag,
              std::as_bytes(std::span<const T>(data.data(), data.size())));
  }

  template <typename T>
  void recv(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::vector<std::byte> bytes = recvBytes(src, tag);
    if (bytes.size() != out.size_bytes()) {
      throw std::runtime_error("minimpi: message size mismatch");
    }
    std::memcpy(out.data(), bytes.data(), bytes.size());
  }

  /// Simultaneous exchange with a partner rank (deadlock-free pairwise).
  template <typename T>
  void sendrecv(int partner, int tag, std::span<const T> sendBuf,
                std::span<T> recvBuf) {
    send(partner, tag, sendBuf);
    recv(partner, tag, recvBuf);
  }

  // ---- nonblocking receives (MPI_Irecv/MPI_Waitall shape) ---------------
  //
  // Sends are already asynchronous (they deposit into the destination
  // mailbox and return), so only the receive side needs request objects.
  // A Request is satisfied by wait(), which blocks until the matching
  // message arrives and copies it into the registered buffer.
  class Request {
   public:
    Request() = default;

    bool valid() const { return comm_ != nullptr; }

   private:
    friend class Comm;
    Request(Comm* comm, int src, int tag, std::byte* data,
            std::size_t bytes)
        : comm_(comm), src_(src), tag_(tag), data_(data), bytes_(bytes) {}

    Comm* comm_ = nullptr;
    int src_ = -1;
    int tag_ = 0;
    std::byte* data_ = nullptr;
    std::size_t bytes_ = 0;
  };

  template <typename T>
  Request irecv(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Request(this, src, tag,
                   reinterpret_cast<std::byte*>(out.data()),
                   out.size_bytes());
  }

  /// Completes one request (blocking).  Idempotent requests are not
  /// supported: wait at most once per request.
  void wait(Request& request);

  /// Completes every request; the order of completion is unspecified,
  /// like MPI_Waitall.
  void waitall(std::span<Request> requests);

  // ---- collectives -------------------------------------------------------
  void barrier();
  double allreduce(double value, Op op = Op::kSum);
  std::vector<double> allgather(double value);
  /// In-place broadcast of `data` from `root` to every rank.
  void broadcast(std::span<double> data, int root);
  /// Reduction delivered to `root` only; other ranks get 0.0.
  double reduce(double value, Op op, int root);
  /// Gather of one value per rank; only `root` receives the full vector
  /// (others get an empty vector), mirroring MPI_Gather.
  std::vector<double> gather(double value, int root);
  /// Exclusive prefix sum: rank r receives sum of values of ranks < r
  /// (rank 0 gets 0.0), mirroring MPI_Exscan with MPI_SUM.
  double exscan(double value);

 private:
  std::shared_ptr<detail::World> world_;
  int rank_;
};

/// Spawns `numRanks` threads, each running `body(comm)`.  Rethrows the
/// first rank exception after all ranks have joined.
void run(int numRanks, const std::function<void(Comm&)>& body);

/// MPI_Dims_create-style balanced 3D factorisation of `numRanks`.
std::array<int, 3> dimsCreate3D(int numRanks);

/// 3D Cartesian topology helper (non-periodic).
class Cart3D {
 public:
  Cart3D(Comm& comm, std::array<int, 3> dims);

  std::array<int, 3> coords() const { return coords_; }
  std::array<int, 3> dims() const { return dims_; }
  /// Rank of the neighbour one step along `axis` in `direction` (+1/-1);
  /// -1 when the neighbour would be outside the domain.
  int neighbor(int axis, int direction) const;

  static std::array<int, 3> rankToCoords(int rank,
                                         const std::array<int, 3>& dims);
  static int coordsToRank(const std::array<int, 3>& coords,
                          const std::array<int, 3>& dims);

 private:
  std::array<int, 3> dims_;
  std::array<int, 3> coords_;
};

}  // namespace rebench::minimpi
