#include "parallel/minimpi.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/util/error.hpp"

namespace rebench::minimpi {

namespace detail {

World::World(int size) : size_(size), scratch_(size, 0.0) {
  REBENCH_REQUIRE(size > 0);
}

void World::post(int src, int dst, int tag, std::vector<std::byte> data) {
  {
    std::lock_guard lock(mutex_);
    mailboxes_[{dst, src, tag}].push_back(Message{std::move(data)});
  }
  arrived_.notify_all();
}

std::vector<std::byte> World::await(int src, int dst, int tag) {
  std::unique_lock lock(mutex_);
  const auto key = std::make_tuple(dst, src, tag);
  arrived_.wait(lock, [&] {
    auto it = mailboxes_.find(key);
    return it != mailboxes_.end() && !it->second.empty();
  });
  auto& queue = mailboxes_.at(key);
  std::vector<std::byte> data = std::move(queue.front().data);
  queue.erase(queue.begin());
  return data;
}

void World::barrier() {
  std::unique_lock lock(barrierMutex_);
  const bool mySense = barrierSense_;
  if (++barrierCount_ == size_) {
    barrierCount_ = 0;
    barrierSense_ = !barrierSense_;
    barrierCv_.notify_all();
  } else {
    barrierCv_.wait(lock, [&] { return barrierSense_ != mySense; });
  }
}

}  // namespace detail

void Comm::sendBytes(int dest, int tag, std::span<const std::byte> data) {
  REBENCH_REQUIRE(dest >= 0 && dest < size());
  world_->post(rank_, dest, tag,
               std::vector<std::byte>(data.begin(), data.end()));
}

std::vector<std::byte> Comm::recvBytes(int src, int tag) {
  REBENCH_REQUIRE(src >= 0 && src < size());
  return world_->await(src, rank_, tag);
}

void Comm::barrier() { world_->barrier(); }

double Comm::allreduce(double value, Op op) {
  std::vector<double>& scratch = world_->scratch();
  scratch[rank_] = value;
  world_->barrier();  // everyone has written
  double result = scratch[0];
  for (int r = 1; r < size(); ++r) {
    switch (op) {
      case Op::kSum: result += scratch[r]; break;
      case Op::kMin: result = std::min(result, scratch[r]); break;
      case Op::kMax: result = std::max(result, scratch[r]); break;
    }
  }
  world_->barrier();  // everyone has read; scratch reusable
  return result;
}

std::vector<double> Comm::allgather(double value) {
  std::vector<double>& scratch = world_->scratch();
  scratch[rank_] = value;
  world_->barrier();
  std::vector<double> out(scratch.begin(), scratch.begin() + size());
  world_->barrier();
  return out;
}

void Comm::broadcast(std::span<double> data, int root) {
  constexpr int kBcastTag = -7;
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      send<double>(r, kBcastTag, data);
    }
  } else {
    recv<double>(root, kBcastTag, data);
  }
}

void Comm::wait(Request& request) {
  REBENCH_REQUIRE(request.valid() && request.comm_ == this);
  const std::vector<std::byte> bytes =
      recvBytes(request.src_, request.tag_);
  if (bytes.size() != request.bytes_) {
    throw std::runtime_error("minimpi: message size mismatch in wait()");
  }
  std::memcpy(request.data_, bytes.data(), bytes.size());
  request.comm_ = nullptr;  // consumed
}

void Comm::waitall(std::span<Request> requests) {
  for (Request& request : requests) {
    if (request.valid()) wait(request);
  }
}

double Comm::reduce(double value, Op op, int root) {
  const double result = allreduce(value, op);
  return rank_ == root ? result : 0.0;
}

std::vector<double> Comm::gather(double value, int root) {
  std::vector<double> all = allgather(value);
  if (rank_ != root) return {};
  return all;
}

double Comm::exscan(double value) {
  const std::vector<double> all = allgather(value);
  double sum = 0.0;
  for (int r = 0; r < rank_; ++r) sum += all[r];
  return sum;
}

void run(int numRanks, const std::function<void(Comm&)>& body) {
  REBENCH_REQUIRE(numRanks > 0);
  auto world = std::make_shared<detail::World>(numRanks);
  std::vector<std::thread> threads;
  threads.reserve(numRanks);
  std::mutex errorMutex;
  std::exception_ptr firstError;
  for (int r = 0; r < numRanks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

std::array<int, 3> dimsCreate3D(int numRanks) {
  REBENCH_REQUIRE(numRanks > 0);
  // Choose the factorisation dx*dy*dz == numRanks minimising surface area
  // (most cubic decomposition), matching MPI_Dims_create's intent.
  std::array<int, 3> best = {numRanks, 1, 1};
  long long bestScore = -1;
  for (int dx = 1; dx <= numRanks; ++dx) {
    if (numRanks % dx != 0) continue;
    const int rem = numRanks / dx;
    for (int dy = 1; dy <= rem; ++dy) {
      if (rem % dy != 0) continue;
      const int dz = rem / dy;
      const long long score = static_cast<long long>(dx) * dy +
                              static_cast<long long>(dy) * dz +
                              static_cast<long long>(dx) * dz;
      if (bestScore < 0 || score < bestScore) {
        bestScore = score;
        best = {dx, dy, dz};
      }
    }
  }
  std::sort(best.begin(), best.end(), std::greater<>());
  return best;
}

Cart3D::Cart3D(Comm& comm, std::array<int, 3> dims) : dims_(dims) {
  REBENCH_REQUIRE(dims[0] * dims[1] * dims[2] == comm.size());
  coords_ = rankToCoords(comm.rank(), dims_);
}

std::array<int, 3> Cart3D::rankToCoords(int rank,
                                        const std::array<int, 3>& dims) {
  std::array<int, 3> coords;
  coords[2] = rank % dims[2];
  coords[1] = (rank / dims[2]) % dims[1];
  coords[0] = rank / (dims[1] * dims[2]);
  return coords;
}

int Cart3D::coordsToRank(const std::array<int, 3>& coords,
                         const std::array<int, 3>& dims) {
  return (coords[0] * dims[1] + coords[1]) * dims[2] + coords[2];
}

int Cart3D::neighbor(int axis, int direction) const {
  REBENCH_REQUIRE(axis >= 0 && axis < 3 &&
                  (direction == 1 || direction == -1));
  std::array<int, 3> c = coords_;
  c[axis] += direction;
  if (c[axis] < 0 || c[axis] >= dims_[axis]) return -1;
  return coordsToRank(c, dims_);
}

}  // namespace rebench::minimpi
