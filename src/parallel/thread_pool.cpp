#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "core/util/error.hpp"

namespace rebench {

namespace {

// Nesting bookkeeping so a wait() issued from inside a pool task can
// discount itself from the pool's active count instead of deadlocking.
struct ExecState {
  const ThreadPool* pool = nullptr;
  std::size_t depth = 0;
};
thread_local ExecState tlsExec;

// Worker-lane id of this thread; -1 off-pool (see currentLane()).
thread_local int tlsLane = -1;

}  // namespace

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) {
    numThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

int ThreadPool::currentLane() { return tlsLane; }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue({std::move(task), nullptr});
}

void ThreadPool::enqueue(Job job) {
  {
    std::lock_guard lock(mutex_);
    REBENCH_REQUIRE(!shutdown_);
    jobs_.push(std::move(job));
  }
  taskReady_.notify_one();
  progress_.notify_all();  // helpers blocked on an empty queue
}

void ThreadPool::runOneJob(std::unique_lock<std::mutex>& lock) {
  Job job = std::move(jobs_.front());
  jobs_.pop();
  ++active_;
  lock.unlock();

  const ExecState saved = tlsExec;
  tlsExec = {this, (saved.pool == this ? saved.depth : 0) + 1};
  std::exception_ptr error;
  try {
    job.fn();
  } catch (...) {
    error = std::current_exception();
  }
  tlsExec = saved;

  lock.lock();
  --active_;
  if (job.group != nullptr) {
    if (error && !job.group->error_) job.group->error_ = error;
    --job.group->pending_;
  } else if (error && !firstError_) {
    firstError_ = error;
  }
  progress_.notify_all();
}

void ThreadPool::workerLoop(std::size_t lane) {
  tlsLane = static_cast<int>(lane);
  std::unique_lock lock(mutex_);
  while (true) {
    taskReady_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
    if (shutdown_ && jobs_.empty()) return;
    runOneJob(lock);
  }
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  // A waiter inside a pool task is itself counted in active_; quiescence
  // for it means "nothing running but me (and my enclosing tasks)".
  const std::size_t self = tlsExec.pool == this ? tlsExec.depth : 0;
  while (!(jobs_.empty() && active_ == self)) {
    if (!jobs_.empty()) {
      runOneJob(lock);
      continue;
    }
    progress_.wait(lock, [this, self] {
      return !jobs_.empty() || active_ == self;
    });
  }
  if (firstError_) {
    std::exception_ptr error = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

std::size_t ThreadPool::globalSizeFromEnv() {
  const char* env = std::getenv("REBENCH_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 0;  // unparsable = host default
  return static_cast<std::size_t>(parsed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(globalSizeFromEnv());
  return pool;
}

TaskGroup::~TaskGroup() { waitImpl(/*rethrow=*/false); }

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(pool_.mutex_);
    REBENCH_REQUIRE(!pool_.shutdown_);
    ++pending_;
    pool_.jobs_.push({std::move(task), this});
  }
  pool_.taskReady_.notify_one();
  pool_.progress_.notify_all();
}

void TaskGroup::wait() { waitImpl(/*rethrow=*/true); }

void TaskGroup::waitImpl(bool rethrow) {
  std::unique_lock lock(pool_.mutex_);
  while (pending_ != 0) {
    if (!pool_.jobs_.empty()) {
      // Help: run someone's queued job (possibly not ours) instead of
      // idling — this is what makes nested parallel regions on a shared
      // pool make progress.
      pool_.runOneJob(lock);
      continue;
    }
    pool_.progress_.wait(lock, [this] {
      return pending_ == 0 || !pool_.jobs_.empty();
    });
  }
  if (rethrow && error_) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void parallelForBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& blockFn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t numBlocks = std::min(n, pool.size());
  if (numBlocks <= 1) {
    blockFn(begin, end);
    return;
  }
  TaskGroup group(pool);
  const std::size_t chunk = (n + numBlocks - 1) / numBlocks;
  for (std::size_t b = 0; b < numBlocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.run([&blockFn, lo, hi] { blockFn(lo, hi); });
  }
  group.wait();
}

void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 Schedule schedule, std::size_t grain) {
  if (begin >= end) return;
  if (schedule == Schedule::kStatic) {
    parallelForBlocked(pool, begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
    return;
  }
  // Dynamic: workers pull grain-sized chunks from a shared counter.
  grain = std::max<std::size_t>(1, grain);
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t numWorkers = std::min(end - begin, pool.size());
  TaskGroup group(pool);
  for (std::size_t w = 0; w < numWorkers; ++w) {
    group.run([next, &fn, end, grain] {
      while (true) {
        const std::size_t lo = next->fetch_add(grain);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  group.wait();
}

double parallelReduceSumBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& partial) {
  if (begin >= end) return 0.0;
  const std::size_t n = end - begin;
  const std::size_t numBlocks = std::min(n, pool.size());
  if (numBlocks <= 1) return partial(begin, end);
  std::vector<double> partials(numBlocks, 0.0);
  const std::size_t chunk = (n + numBlocks - 1) / numBlocks;
  TaskGroup group(pool);
  for (std::size_t b = 0; b < numBlocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    group.run([&partial, &partials, b, lo, hi] {
      partials[b] = partial(lo, hi);
    });
  }
  group.wait();
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

double parallelReduceSum(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<double(std::size_t)>& fn) {
  return parallelReduceSumBlocked(
      pool, begin, end, [&fn](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += fn(i);
        return sum;
      });
}

}  // namespace rebench
