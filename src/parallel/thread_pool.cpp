#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "core/util/error.hpp"

namespace rebench {

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) {
    numThreads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    REBENCH_REQUIRE(!shutdown_);
    tasks_.push(std::move(task));
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  allDone_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) allDone_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallelForBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& blockFn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t numBlocks = std::min(n, pool.size());
  if (numBlocks <= 1) {
    blockFn(begin, end);
    return;
  }
  const std::size_t chunk = (n + numBlocks - 1) / numBlocks;
  for (std::size_t b = 0; b < numBlocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.submit([&blockFn, lo, hi] { blockFn(lo, hi); });
  }
  pool.wait();
}

void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 Schedule schedule, std::size_t grain) {
  if (begin >= end) return;
  if (schedule == Schedule::kStatic) {
    parallelForBlocked(pool, begin, end,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
    return;
  }
  // Dynamic: workers pull grain-sized chunks from a shared counter.
  grain = std::max<std::size_t>(1, grain);
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t numWorkers = std::min(end - begin, pool.size());
  for (std::size_t w = 0; w < numWorkers; ++w) {
    pool.submit([next, &fn, end, grain] {
      while (true) {
        const std::size_t lo = next->fetch_add(grain);
        if (lo >= end) return;
        const std::size_t hi = std::min(end, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  pool.wait();
}

double parallelReduceSumBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& partial) {
  if (begin >= end) return 0.0;
  const std::size_t n = end - begin;
  const std::size_t numBlocks = std::min(n, pool.size());
  if (numBlocks <= 1) return partial(begin, end);
  std::vector<double> partials(numBlocks, 0.0);
  const std::size_t chunk = (n + numBlocks - 1) / numBlocks;
  for (std::size_t b = 0; b < numBlocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.submit([&partial, &partials, b, lo, hi] {
      partials[b] = partial(lo, hi);
    });
  }
  pool.wait();
  double sum = 0.0;
  for (double p : partials) sum += p;
  return sum;
}

double parallelReduceSum(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<double(std::size_t)>& fn) {
  return parallelReduceSumBlocked(
      pool, begin, end, [&fn](std::size_t lo, std::size_t hi) {
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += fn(i);
        return sum;
      });
}

}  // namespace rebench
