// A work-sharing thread pool and data-parallel loops — the OpenMP stand-in
// used by the native BabelStream backends and solver kernels.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rebench {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `numThreads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  /// Process-wide pool sized to the host (lazily constructed).
  static ThreadPool& global();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t active_ = 0;
  bool shutdown_ = false;
};

/// Scheduling policy for parallelFor, mirroring OpenMP's schedule clause.
enum class Schedule { kStatic, kDynamic };

/// Runs fn(i) for i in [begin, end) across the pool.  Static scheduling
/// gives each worker one contiguous block (streaming-friendly); dynamic
/// hands out `grain`-sized chunks for irregular work.
void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 Schedule schedule = Schedule::kStatic,
                 std::size_t grain = 1024);

/// Block-parallel loop: fn(blockBegin, blockEnd) per worker block.  This is
/// the fast path used by the stream kernels (no per-index call overhead).
void parallelForBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& blockFn);

/// Parallel sum reduction of fn(i) over [begin, end).
double parallelReduceSum(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<double(std::size_t)>& fn);

/// Blocked variant: partial(blockBegin, blockEnd) -> partial sum.
double parallelReduceSumBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& partial);

}  // namespace rebench
