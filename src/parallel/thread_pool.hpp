// A work-sharing thread pool and data-parallel loops — the OpenMP stand-in
// used by the native BabelStream backends, solver kernels, and the
// campaign executor.
//
// Concurrency model: one FIFO queue of jobs, each optionally owned by a
// TaskGroup.  Waiting (pool-wide or per-group) *helps*: a blocked waiter
// pops and runs queued jobs instead of idling, so nested parallel regions
// and concurrent groups from independent callers make progress even on a
// single-thread pool.  The first exception a task throws is captured and
// rethrown to the corresponding wait() caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rebench {

class TaskGroup;

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `numThreads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result; exceptions the
  /// task throws surface through the future, not through wait().
  template <typename F>
  auto submitTask(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    submit([task] { (*task)(); });
    return task->get_future();
  }

  /// Blocks until every submitted task has finished, helping to run queued
  /// jobs meanwhile.  Rethrows the first exception escaping a plain
  /// submit() task (TaskGroup tasks report to their group's wait()
  /// instead).  Callable from inside a pool task; the caller's own nesting
  /// depth is discounted so a single nested wait() cannot deadlock itself.
  void wait();

  /// Worker-lane identity of the calling thread: workers are numbered
  /// 0..size()-1 at construction; threads outside any pool (including
  /// helpers draining the queue from wait()) read -1.  Which lane runs
  /// which task is scheduling-dependent — callers must treat the value
  /// as diagnostic, never as part of deterministic output (the campaign
  /// executor stamps *canonical* lanes into traces for that).
  static int currentLane();

  /// Process-wide pool (lazily constructed).  Sized by the
  /// REBENCH_THREADS environment variable when set (0 or unparsable =
  /// hardware_concurrency).
  static ThreadPool& global();

  /// Parses REBENCH_THREADS into a pool size (0 = hardware concurrency);
  /// exposed separately so the policy is testable without the singleton.
  static std::size_t globalSizeFromEnv();

 private:
  friend class TaskGroup;

  struct Job {
    std::function<void()> fn;
    TaskGroup* group = nullptr;  // null for plain submit()
  };

  void enqueue(Job job);
  /// Pops and runs the front job.  `lock` must hold mutex_ on entry and
  /// is re-held on return (released around the user function).
  void runOneJob(std::unique_lock<std::mutex>& lock);
  void workerLoop(std::size_t lane);

  std::vector<std::thread> workers_;
  std::queue<Job> jobs_;
  std::mutex mutex_;
  std::condition_variable taskReady_;  // workers: new work or shutdown
  std::condition_variable progress_;   // waiters/helpers: any state change
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr firstError_;  // from plain submit() tasks
};

/// A set of tasks whose completion can be awaited independently of other
/// work sharing the same pool.  wait() helps drain the pool's queue while
/// the group is outstanding and rethrows the first exception thrown by a
/// task of *this* group.  The destructor waits (swallowing errors) — call
/// wait() explicitly to observe failures.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues a task belonging to this group.
  void run(std::function<void()> task);

  /// Blocks until every task of this group has finished, running queued
  /// jobs meanwhile; rethrows the group's first exception.
  void wait();

 private:
  friend class ThreadPool;

  void waitImpl(bool rethrow);

  ThreadPool& pool_;
  std::size_t pending_ = 0;        // guarded by pool_.mutex_
  std::exception_ptr error_;       // guarded by pool_.mutex_
};

/// Scheduling policy for parallelFor, mirroring OpenMP's schedule clause.
enum class Schedule { kStatic, kDynamic };

/// Runs fn(i) for i in [begin, end) across the pool.  Static scheduling
/// gives each worker one contiguous block (streaming-friendly); dynamic
/// hands out `grain`-sized chunks for irregular work.  Exceptions from
/// `fn` propagate to the caller (first one wins).
void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn,
                 Schedule schedule = Schedule::kStatic,
                 std::size_t grain = 1024);

/// Block-parallel loop: fn(blockBegin, blockEnd) per worker block.  This is
/// the fast path used by the stream kernels (no per-index call overhead).
void parallelForBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& blockFn);

/// Parallel sum reduction of fn(i) over [begin, end).
double parallelReduceSum(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<double(std::size_t)>& fn);

/// Blocked variant: partial(blockBegin, blockEnd) -> partial sum.
double parallelReduceSumBlocked(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<double(std::size_t, std::size_t)>& partial);

}  // namespace rebench
