#include "hpcg/testcase.hpp"

#include "core/util/error.hpp"
#include "hpcg/driver.hpp"

namespace rebench::hpcg {

RegressionTest makeHpcgTest(const HpcgTestOptions& options) {
  RegressionTest test;
  const std::string variant = std::string(variantName(options.variant));
  test.name = "HPCG_" + variant;
  test.spackSpec = "hpcg operator=" + variant;
  // Scheduler geometry: 0 means "one rank per core", resolved in the run
  // body; give the scheduler a single whole-node task in that case.
  test.numTasks = options.numTasks > 0 ? options.numTasks : 1;
  if (options.numTasks == 0) test.useAllCoresPerTask = true;
  test.numTasksPerNode = 0;
  test.numCpusPerTask = 1;
  test.sanityPattern = R"(VALID with a GFLOP/s rating)";
  test.perfPatterns = {
      {"GFLOPs", R"(GFLOP/s rating of ([0-9]+\.[0-9]+))",
       Unit::kGFlopPerSec},
  };

  test.run = [options, variant](const RunContext& ctx) -> RunOutput {
    RunOutput out;
    const std::string& machineId = ctx.partition->machineModel;
    HpcgConfig config;
    config.variant = options.variant;
    config.iterations = options.iterations;
    config.multigrid = options.multigrid;

    if (machineId.empty()) {
      config.gridSize = options.nativeGridSize;
      config.numRanks = options.nativeRanks;
      const HpcgResult result = runNative(config);
      out.stdoutText = formatOutput(result);
      out.elapsedSeconds = result.seconds;
      return out;
    }

    const MachineModel& machine = builtinMachines().get(machineId);
    config.gridSize = options.gridSize;
    config.numRanks = options.numTasks > 0
                          ? options.numTasks
                          : machine.totalCores();  // one rank per core
    if (!variantAvailable(options.variant, machine)) {
      out.launchFailed = true;
      out.failureReason = "variant '" + variant + "' N/A on " +
                          machine.displayName;
      return out;
    }
    const std::string salt =
        ctx.repeatIndex > 0 ? ":rep" + std::to_string(ctx.repeatIndex) : "";
    const HpcgResult result = runModeled(config, machine, 24, salt);
    out.stdoutText = formatOutput(result);
    out.elapsedSeconds = result.seconds;
    return out;
  };
  return test;
}

}  // namespace rebench::hpcg
