#include "hpcg/problem.hpp"

#include "core/util/error.hpp"

namespace rebench::hpcg {

Geometry Geometry::slab(int n, int rank, int numRanks) {
  REBENCH_REQUIRE(n > 0 && numRanks > 0 && rank >= 0 && rank < numRanks);
  REBENCH_REQUIRE(numRanks <= n);
  Geometry g;
  g.nx = n;
  g.ny = n;
  g.nzGlobal = n;
  const int base = n / numRanks;
  const int extra = n % numRanks;
  g.nzLocal = base + (rank < extra ? 1 : 0);
  g.zOffset = rank * base + std::min(rank, extra);
  return g;
}

}  // namespace rebench::hpcg
