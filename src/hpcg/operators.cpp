// The four operator variants of Table 2.
//
// Implementation note shared by all variants: vectors are extended into a
// "padded" layout [lo halo plane | local slab | hi halo plane] so that all
// 27 stencil neighbours are reachable with *fixed linear offsets*; missing
// halos (global domain boundary) are zero planes, which realises the
// truncated-stencil Dirichlet rows of real HPCG.
#include "hpcg/operator.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <tuple>
#include <vector>

#include "core/util/error.hpp"

namespace rebench::hpcg {

std::string_view variantName(Variant v) {
  switch (v) {
    case Variant::kCsr: return "csr";
    case Variant::kCsrOpt: return "csr-opt";
    case Variant::kMatrixFree: return "matrix-free";
    case Variant::kLfric: return "lfric";
  }
  return "?";
}

Variant variantFromName(std::string_view name) {
  if (name == "csr") return Variant::kCsr;
  if (name == "csr-opt") return Variant::kCsrOpt;
  if (name == "matrix-free") return Variant::kMatrixFree;
  if (name == "lfric") return Variant::kLfric;
  throw NotFoundError("unknown HPCG variant '" + std::string(name) + "'");
}

void Operator::precondition(std::span<const double> r,
                            std::span<double> z) const {
  std::fill(z.begin(), z.end(), 0.0);
  smoothInPlace(r, z);
}

namespace {

constexpr double kDiag = 26.0;
constexpr double kOff = -1.0;

/// Scratch padded vector: [P halo-lo][n local][P halo-hi].
class Padded {
 public:
  explicit Padded(const Geometry& g)
      : plane_(g.planePoints()), data_(g.localPoints() + 2 * plane_, 0.0) {}

  /// Loads local values and halo planes (zeroing absent halos).
  void load(std::span<const double> x, const HaloView& halo) {
    std::memcpy(data_.data() + plane_, x.data(), x.size() * sizeof(double));
    if (halo.lo != nullptr) {
      std::memcpy(data_.data(), halo.lo, plane_ * sizeof(double));
    } else {
      std::fill(data_.begin(), data_.begin() + plane_, 0.0);
    }
    if (halo.hi != nullptr) {
      std::memcpy(data_.data() + plane_ + x.size(), halo.hi,
                  plane_ * sizeof(double));
    } else {
      std::fill(data_.end() - plane_, data_.end(), 0.0);
    }
  }

  /// Zero everything (GS scratch start state).
  void clear() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Pointer to local element 0; negative offsets reach the lo halo.
  double* local() { return data_.data() + plane_; }
  const double* local() const { return data_.data() + plane_; }

 private:
  std::size_t plane_;
  std::vector<double> data_;
};

/// The 27 stencil offsets in padded index space, centre included.
struct StencilOffsets {
  std::int64_t offsets[27];
  int count = 0;

  explicit StencilOffsets(const Geometry& g) {
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di) {
          offsets[count++] = di + static_cast<std::int64_t>(g.nx) *
                                      (dj + static_cast<std::int64_t>(g.ny) *
                                                dk);
        }
      }
    }
  }
};

/// Shared 27-point reference semantics used to assemble the CSR variants
/// and as the direct loops of the matrix-free variant.
class Stencil27 {
 public:
  explicit Stencil27(const Geometry& g) : geo_(g), offsets_(g) {}

  /// Visits every neighbour of (i,j,k) inside the x/y domain; z handled by
  /// the padded layout.  fn(paddedOffsetFromCentre, value).
  template <typename Fn>
  void forEachNeighbor(int i, int j, Fn&& fn) const {
    int idx = 0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di, ++idx) {
          if (i + di < 0 || i + di >= geo_.nx) continue;
          if (j + dj < 0 || j + dj >= geo_.ny) continue;
          const bool centre = (di == 0 && dj == 0 && dk == 0);
          fn(offsets_.offsets[idx], centre ? kDiag : kOff);
        }
      }
    }
  }

  const Geometry& geo_;
  StencilOffsets offsets_;
};

// ---------------------------------------------------------------------------
// CSR variant (HPCG "Original")
// ---------------------------------------------------------------------------

class CsrOperator final : public Operator {
 public:
  explicit CsrOperator(const Geometry& g)
      : Operator(g), pad_(g), zscratch_(g) {
    assemble();
  }

  std::string_view name() const override { return "csr"; }

  void apply(std::span<const double> x, const HaloView& halo,
             std::span<double> y) const override {
    REBENCH_REQUIRE(x.size() == n() && y.size() == n());
    pad_.load(x, halo);
    const double* xx = pad_.local();
    for (std::size_t row = 0; row < n(); ++row) {
      double sum = 0.0;
      for (std::size_t p = rowPtr_[row]; p < rowPtr_[row + 1]; ++p) {
        sum += values_[p] * xx[static_cast<std::int64_t>(row) + cols_[p]];
      }
      y[row] = sum;
    }
  }

  void smoothInPlace(std::span<const double> b,
                     std::span<double> x) const override {
    REBENCH_REQUIRE(b.size() == n() && x.size() == n());
    zscratch_.load(x, HaloView{});  // halo of x frozen at zero
    double* zz = zscratch_.local();
    // Forward sweep.
    for (std::size_t row = 0; row < n(); ++row) {
      double sum = b[row];
      for (std::size_t p = rowPtr_[row]; p < rowPtr_[row + 1]; ++p) {
        if (cols_[p] == 0) continue;  // diagonal
        sum -= values_[p] * zz[static_cast<std::int64_t>(row) + cols_[p]];
      }
      zz[row] = sum / kDiag;
    }
    // Backward sweep.
    for (std::size_t row = n(); row-- > 0;) {
      double sum = b[row];
      for (std::size_t p = rowPtr_[row]; p < rowPtr_[row + 1]; ++p) {
        if (cols_[p] == 0) continue;
        sum -= values_[p] * zz[static_cast<std::int64_t>(row) + cols_[p]];
      }
      zz[row] = sum / kDiag;
    }
    std::memcpy(x.data(), zz, n() * sizeof(double));
  }

  double applyBytes() const override {
    // values (8B) + relative column offsets (4B) per nonzero, plus the
    // x stream, padded-copy traffic and the y store.
    return static_cast<double>(values_.size()) * 12.0 +
           24.0 * static_cast<double>(n());
  }
  double applyFlops() const override {
    return 2.0 * static_cast<double>(values_.size());
  }
  double precondBytes() const override {
    return 2.0 * (static_cast<double>(values_.size()) * 12.0 +
                  16.0 * static_cast<double>(n()));
  }
  double precondFlops() const override {
    return 4.0 * static_cast<double>(values_.size());
  }

  std::size_t nnz() const { return values_.size(); }

 private:
  void assemble() {
    const Geometry& g = geometry();
    Stencil27 stencil(g);
    rowPtr_.assign(n() + 1, 0);
    values_.reserve(27 * n());
    cols_.reserve(27 * n());
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          stencil.forEachNeighbor(i, j,
                                  [this](std::int64_t offset, double value) {
                                    cols_.push_back(
                                        static_cast<std::int32_t>(offset));
                                    values_.push_back(value);
                                  });
          rowPtr_[row + 1] = values_.size();
        }
      }
    }
  }

  // Columns stored as *relative* padded offsets from the row index, so
  // halo coupling needs no index translation.
  std::vector<std::size_t> rowPtr_;
  std::vector<std::int32_t> cols_;
  std::vector<double> values_;
  mutable Padded pad_;
  mutable Padded zscratch_;
};

// ---------------------------------------------------------------------------
// Vendor-optimised CSR ("Intel-avx2" stand-in)
// ---------------------------------------------------------------------------

/// Models the vendor-optimised binaries (Intel MKL's avx2 HPCG): the
/// matrix values are still streamed, but interior rows share one offset
/// table (SELL-like), eliminating the per-nonzero column-index stream and
/// enabling wide vector loads; only x/y-boundary rows fall back to CSR.
class CsrOptOperator final : public Operator {
 public:
  explicit CsrOptOperator(const Geometry& g)
      : Operator(g), offsets_(g), pad_(g), zscratch_(g) {
    assembleBoundary();
  }

  std::string_view name() const override { return "csr-opt"; }

  void apply(std::span<const double> x, const HaloView& halo,
             std::span<double> y) const override {
    REBENCH_REQUIRE(x.size() == n() && y.size() == n());
    pad_.load(x, halo);
    const double* xx = pad_.local();
    const Geometry& g = geometry();
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          if (isInterior(i, j)) {
            // All 27 neighbours present: stream the stored values against
            // the shared offset table (no column indices).
            const double* vals =
                interiorValues_.data() + 27 * interiorId_[row];
            double sum = 0.0;
            for (int p = 0; p < 27; ++p) {
              sum += vals[p] * xx[static_cast<std::int64_t>(row) +
                                  offsets_.offsets[p]];
            }
            y[row] = sum;
          } else {
            double sum = 0.0;
            for (std::size_t p = rowPtr_[boundaryId_[row]];
                 p < rowPtr_[boundaryId_[row] + 1]; ++p) {
              sum +=
                  values_[p] * xx[static_cast<std::int64_t>(row) + cols_[p]];
            }
            y[row] = sum;
          }
        }
      }
    }
  }

  void smoothInPlace(std::span<const double> b,
                     std::span<double> x) const override {
    REBENCH_REQUIRE(b.size() == n() && x.size() == n());
    zscratch_.load(x, HaloView{});
    double* zz = zscratch_.local();
    sweep(b, zz, /*forward=*/true);
    sweep(b, zz, /*forward=*/false);
    std::memcpy(x.data(), zz, n() * sizeof(double));
  }

  double applyBytes() const override {
    // Values stream without the 4-byte index stream of plain CSR.
    return static_cast<double>(interiorValues_.size()) * 8.0 +
           static_cast<double>(boundaryNnz_) * 12.0 +
           24.0 * static_cast<double>(n());
  }
  double applyFlops() const override { return 2.0 * 27.0 * n(); }
  double precondBytes() const override {
    return 2.0 * (static_cast<double>(interiorValues_.size()) * 8.0 +
                  static_cast<double>(boundaryNnz_) * 12.0 +
                  16.0 * static_cast<double>(n()));
  }
  double precondFlops() const override { return 4.0 * 27.0 * n(); }

 private:
  bool isInterior(int i, int j) const {
    const Geometry& g = geometry();
    return i > 0 && i < g.nx - 1 && j > 0 && j < g.ny - 1;
  }

  void sweep(std::span<const double> r, double* zz, bool forward) const {
    const Geometry& g = geometry();
    const std::size_t count = n();
    for (std::size_t step = 0; step < count; ++step) {
      const std::size_t row = forward ? step : count - 1 - step;
      const int i = static_cast<int>(row % g.nx);
      const int j = static_cast<int>((row / g.nx) % g.ny);
      double sum = r[row];
      if (isInterior(i, j)) {
        const double* vals = interiorValues_.data() + 27 * interiorId_[row];
        for (int p = 0; p < 27; ++p) {
          if (p == 13) continue;  // centre of the 3x3x3 block
          sum -= vals[p] *
                 zz[static_cast<std::int64_t>(row) + offsets_.offsets[p]];
        }
      } else {
        for (std::size_t p = rowPtr_[boundaryId_[row]];
             p < rowPtr_[boundaryId_[row] + 1]; ++p) {
          if (cols_[p] == 0) continue;
          sum -= values_[p] * zz[static_cast<std::int64_t>(row) + cols_[p]];
        }
      }
      zz[row] = sum / kDiag;
    }
  }

  void assembleBoundary() {
    const Geometry& g = geometry();
    Stencil27 stencil(g);
    boundaryId_.assign(n(), 0);
    interiorId_.assign(n(), 0);
    rowPtr_.push_back(0);
    std::size_t row = 0;
    std::size_t nextId = 0;
    std::size_t nextInterior = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          if (isInterior(i, j)) {
            interiorId_[row] = nextInterior++;
            for (int p = 0; p < 27; ++p) {
              interiorValues_.push_back(p == 13 ? kDiag : kOff);
            }
            continue;
          }
          boundaryId_[row] = nextId++;
          stencil.forEachNeighbor(i, j,
                                  [this](std::int64_t offset, double value) {
                                    cols_.push_back(
                                        static_cast<std::int32_t>(offset));
                                    values_.push_back(value);
                                  });
          rowPtr_.push_back(values_.size());
        }
      }
    }
    boundaryNnz_ = values_.size();
  }

  StencilOffsets offsets_;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::int32_t> cols_;
  std::vector<double> values_;
  std::vector<double> interiorValues_;   // 27 per interior row, SELL-style
  std::vector<std::size_t> interiorId_;
  std::vector<std::size_t> boundaryId_;
  std::size_t boundaryNnz_ = 0;
  mutable Padded pad_;
  mutable Padded zscratch_;
};

// ---------------------------------------------------------------------------
// Matrix-free 27-point variant
// ---------------------------------------------------------------------------

class MatrixFreeOperator final : public Operator {
 public:
  explicit MatrixFreeOperator(const Geometry& g)
      : Operator(g), offsets_(g), pad_(g), zscratch_(g) {}

  std::string_view name() const override { return "matrix-free"; }

  void apply(std::span<const double> x, const HaloView& halo,
             std::span<double> y) const override {
    REBENCH_REQUIRE(x.size() == n() && y.size() == n());
    pad_.load(x, halo);
    const double* xx = pad_.local();
    const Geometry& g = geometry();
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          y[row] = kDiag * xx[row] - neighborSum(xx, row, i, j);
        }
      }
    }
  }

  void smoothInPlace(std::span<const double> b,
                     std::span<double> x) const override {
    REBENCH_REQUIRE(b.size() == n() && x.size() == n());
    zscratch_.load(x, HaloView{});
    double* zz = zscratch_.local();
    const Geometry& g = geometry();
    const std::size_t count = n();
    // Forward Gauss-Seidel, evaluated directly from the stencil.
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          zz[row] = (b[row] + neighborSum(zz, row, i, j)) / kDiag;
        }
      }
    }
    // Backward sweep.
    for (std::size_t step = count; step-- > 0;) {
      const int i = static_cast<int>(step % g.nx);
      const int j = static_cast<int>((step / g.nx) % g.ny);
      zz[step] = (b[step] + neighborSum(zz, step, i, j)) / kDiag;
    }
    std::memcpy(x.data(), zz, count * sizeof(double));
  }

  double applyBytes() const override {
    // Pure stream traffic: x in, y out, plus the padded-copy pass.
    return 24.0 * static_cast<double>(n());
  }
  double applyFlops() const override { return 2.0 * 27.0 * n(); }
  double precondBytes() const override {
    return 2.0 * 16.0 * static_cast<double>(n());
  }
  double precondFlops() const override { return 4.0 * 27.0 * n(); }

 private:
  /// Sum of the (up to) 26 neighbours of `row` at x/y coords (i, j).
  double neighborSum(const double* xx, std::size_t row, int i, int j) const {
    const Geometry& g = geometry();
    if (i > 0 && i < g.nx - 1 && j > 0 && j < g.ny - 1) {
      double sum = 0.0;
      for (int p = 0; p < 27; ++p) {
        sum += xx[static_cast<std::int64_t>(row) + offsets_.offsets[p]];
      }
      return sum - xx[row];
    }
    double sum = 0.0;
    int idx = 0;
    for (int dk = -1; dk <= 1; ++dk) {
      for (int dj = -1; dj <= 1; ++dj) {
        for (int di = -1; di <= 1; ++di, ++idx) {
          if (di == 0 && dj == 0 && dk == 0) continue;
          if (i + di < 0 || i + di >= g.nx) continue;
          if (j + dj < 0 || j + dj >= g.ny) continue;
          sum += xx[static_cast<std::int64_t>(row) + offsets_.offsets[idx]];
        }
      }
    }
    return sum;
  }

  StencilOffsets offsets_;
  mutable Padded pad_;
  mutable Padded zscratch_;
};

// ---------------------------------------------------------------------------
// LFRic-style symmetrised Helmholtz variant
// ---------------------------------------------------------------------------

/// A 7-point Helmholtz-like operator with stored coefficient fields, the
/// shape of the Met Office LFRic pressure operator: strong vertical
/// coupling through per-edge coefficients, weaker horizontal coupling.
/// Coefficients are functions of *global* coordinates so the distributed
/// operator is exactly symmetric across rank boundaries.
class LfricOperator final : public Operator {
 public:
  explicit LfricOperator(const Geometry& g)
      : Operator(g), pad_(g), zscratch_(g) {
    const std::size_t count = n();
    alpha_.resize(count);
    beta_.resize(count);
    gammaUp_.resize(count);
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          const int kg = g.zOffset + k;
          alpha_[row] = alphaAt(kg);
          beta_[row] = kBeta;
          gammaUp_[row] = gammaAt(kg);  // edge (kg, kg+1)
        }
      }
    }
  }

  std::string_view name() const override { return "lfric"; }

  void apply(std::span<const double> x, const HaloView& halo,
             std::span<double> y) const override {
    REBENCH_REQUIRE(x.size() == n() && y.size() == n());
    pad_.load(x, halo);
    const double* xx = pad_.local();
    evaluate(xx, y.data(), nullptr);
  }

  void smoothInPlace(std::span<const double> b,
                     std::span<double> x) const override {
    REBENCH_REQUIRE(b.size() == n() && x.size() == n());
    zscratch_.load(x, HaloView{});
    double* zz = zscratch_.local();
    const Geometry& g = geometry();
    const std::size_t count = n();
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          zz[row] = (b[row] + offDiagSum(zz, row, i, j, k)) / alpha_[row];
        }
      }
    }
    for (std::size_t step = count; step-- > 0;) {
      const auto [i, j, k] = unpack(step);
      zz[step] = (b[step] + offDiagSum(zz, step, i, j, k)) / alpha_[step];
    }
    std::memcpy(x.data(), zz, count * sizeof(double));
  }

  double applyBytes() const override {
    // Three coefficient fields + x + y + padded copy.
    return (3.0 * 8.0 + 24.0) * static_cast<double>(n());
  }
  double applyFlops() const override { return 13.0 * n(); }
  double precondBytes() const override {
    return 2.0 * (3.0 * 8.0 + 16.0) * static_cast<double>(n());
  }
  double precondFlops() const override { return 26.0 * n(); }

 private:
  static constexpr double kBeta = 0.5;
  static double alphaAt(int kg) { return 8.0 + 0.01 * kg; }
  static double gammaAt(int kg) { return 1.0 + 0.005 * kg; }

  std::tuple<int, int, int> unpack(std::size_t row) const {
    const Geometry& g = geometry();
    const int i = static_cast<int>(row % g.nx);
    const int j = static_cast<int>((row / g.nx) % g.ny);
    const int k = static_cast<int>(row / g.planePoints());
    return {i, j, k};
  }

  /// Sum of coefficient-weighted neighbour values of `row` (positive
  /// convention: the matrix entry is the negative of the weight).
  double offDiagSum(const double* xx, std::size_t row, int i, int j,
                    int k) const {
    const Geometry& g = geometry();
    const std::int64_t P = static_cast<std::int64_t>(g.planePoints());
    const std::int64_t idx = static_cast<std::int64_t>(row);
    // beta_ is spatially constant, so using this cell's value for every
    // horizontal edge keeps the operator exactly symmetric.
    const double beta = beta_[row];
    double sum = 0.0;
    if (i > 0) sum += beta * xx[idx - 1];
    if (i < g.nx - 1) sum += beta * xx[idx + 1];
    if (j > 0) sum += beta * xx[idx - g.nx];
    if (j < g.ny - 1) sum += beta * xx[idx + g.nx];
    const int kg = g.zOffset + k;
    // Up edge (kg, kg+1) uses this cell's stored coefficient; the down
    // edge (kg-1, kg) is the analytic value of the cell below, which may
    // live on another rank.
    if (kg < g.nzGlobal - 1) sum += gammaUp_[row] * xx[idx + P];
    if (kg > 0) sum += gammaAt(kg - 1) * xx[idx - P];
    return sum;
  }

  void evaluate(const double* xx, double* y, const double*) const {
    const Geometry& g = geometry();
    std::size_t row = 0;
    for (int k = 0; k < g.nzLocal; ++k) {
      for (int j = 0; j < g.ny; ++j) {
        for (int i = 0; i < g.nx; ++i, ++row) {
          y[row] = alpha_[row] * xx[row] - offDiagSum(xx, row, i, j, k);
        }
      }
    }
  }

  std::vector<double> alpha_, beta_, gammaUp_;
  mutable Padded pad_;
  mutable Padded zscratch_;
};

}  // namespace

std::unique_ptr<Operator> makeOperator(Variant variant,
                                       const Geometry& geometry) {
  switch (variant) {
    case Variant::kCsr: return std::make_unique<CsrOperator>(geometry);
    case Variant::kCsrOpt: return std::make_unique<CsrOptOperator>(geometry);
    case Variant::kMatrixFree:
      return std::make_unique<MatrixFreeOperator>(geometry);
    case Variant::kLfric: return std::make_unique<LfricOperator>(geometry);
  }
  throw InternalError("unhandled variant");
}

}  // namespace rebench::hpcg
