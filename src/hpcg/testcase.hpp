// Framework test descriptions for the HPCG variants (Table 2's rows),
// equivalent to benchmarks/apps/hpcg in the paper's repository.
#pragma once

#include "core/framework/regression_test.hpp"
#include "hpcg/operator.hpp"

namespace rebench::hpcg {

struct HpcgTestOptions {
  Variant variant = Variant::kCsr;
  /// Per-rank grid edge for the paper-scale (modelled) runs.
  int gridSize = 104;
  /// 0: use every core of the node as one MPI rank each (Table 2's
  /// "MPI only on a single node" geometry: 40 on CLX, 128 on Rome).
  int numTasks = 0;
  int iterations = 50;
  /// Precondition with multigrid instead of SYMGS.
  bool multigrid = false;
  /// Settings for the native ("local") path.
  int nativeGridSize = 24;
  int nativeRanks = 2;
};

/// Spec "hpcg operator=<variant>", sanity "VALID", FOM "GFLOPs" extracted
/// from "GFLOP/s rating of <value>".
RegressionTest makeHpcgTest(const HpcgTestOptions& options);

}  // namespace rebench::hpcg
