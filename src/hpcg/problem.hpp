// HPCG problem geometry.
//
// The global domain is a structured 3D grid, decomposed into z-slabs
// across MPI ranks (the paper runs HPCG "MPI only on a single node").
// Within a slab, indices are x-fastest: idx = i + nx*(j + ny*k).
#pragma once

#include <cstddef>

namespace rebench::hpcg {

struct Geometry {
  int nx = 16;        // local x extent (== global)
  int ny = 16;        // local y extent (== global)
  int nzLocal = 16;   // this rank's slab thickness
  int nzGlobal = 16;  // total z extent
  int zOffset = 0;    // first global z-plane owned by this rank

  std::size_t localPoints() const {
    return static_cast<std::size_t>(nx) * ny * nzLocal;
  }
  std::size_t globalPoints() const {
    return static_cast<std::size_t>(nx) * ny * nzGlobal;
  }
  std::size_t planePoints() const {
    return static_cast<std::size_t>(nx) * ny;
  }

  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(nx) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(ny) * static_cast<std::size_t>(k));
  }

  bool hasLowerNeighbor() const { return zOffset > 0; }
  bool hasUpperNeighbor() const {
    return zOffset + nzLocal < nzGlobal;
  }

  /// Balanced slab for `rank` of `numRanks` over a cube of `n`^3 points.
  static Geometry slab(int n, int rank, int numRanks);
};

}  // namespace rebench::hpcg
