// The operator abstraction behind Table 2's variant axis.
//
// All four variants (CSR, vendor-optimised CSR, matrix-free, LFRic) expose
// the same interface: operator application, one symmetric Gauss-Seidel
// preconditioner sweep, and analytic per-call traffic/flop counters that
// feed the roofline model when runs are projected onto paper hardware.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "hpcg/problem.hpp"

namespace rebench::hpcg {

/// Ghost xy-planes received from the z-neighbours; nullptr at the domain
/// boundary (homogeneous Dirichlet: missing neighbours contribute zero).
struct HaloView {
  const double* lo = nullptr;  // plane at local k == -1
  const double* hi = nullptr;  // plane at local k == nzLocal
};

class Operator {
 public:
  explicit Operator(const Geometry& geometry) : geo_(geometry) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const Geometry& geometry() const { return geo_; }
  std::size_t n() const { return geo_.localPoints(); }

  virtual std::string_view name() const = 0;

  /// y = A x over the local slab.
  virtual void apply(std::span<const double> x, const HaloView& halo,
                     std::span<double> y) const = 0;

  /// One symmetric Gauss-Seidel sweep (forward then backward) on
  /// A x = b, updating x in place from its current values.  Halo values
  /// of x are frozen at zero during the sweep (rank-local smoothing,
  /// matching real HPCG's per-sweep halo treatment).
  virtual void smoothInPlace(std::span<const double> b,
                             std::span<double> x) const = 0;

  /// z <- one SYMGS sweep on A z = r starting from z = 0 (the
  /// single-level preconditioner; multigrid composes smoothInPlace
  /// across a grid hierarchy, see mg_preconditioner.hpp).
  void precondition(std::span<const double> r, std::span<double> z) const;

  /// Estimated DRAM bytes per apply() call (counts matrix data, vector
  /// stream traffic and halo copies; cached re-reads excluded).
  virtual double applyBytes() const = 0;
  virtual double applyFlops() const = 0;
  virtual double precondBytes() const = 0;
  virtual double precondFlops() const = 0;

 private:
  Geometry geo_;
};

enum class Variant { kCsr, kCsrOpt, kMatrixFree, kLfric };

std::string_view variantName(Variant v);
Variant variantFromName(std::string_view name);

/// Factory.  All variants of the 27-point problem assemble/encode the same
/// SPD matrix; the LFRic variant discretises a different (Helmholtz-like)
/// operator, as in the paper.
std::unique_ptr<Operator> makeOperator(Variant variant,
                                       const Geometry& geometry);

}  // namespace rebench::hpcg
