#include "hpcg/cg.hpp"

#include <cmath>
#include <memory>

#include "core/util/error.hpp"
#include "hpcg/mg_preconditioner.hpp"

namespace rebench::hpcg {

namespace {

double dot(std::span<const double> a, std::span<const double> b,
           minimpi::Comm* comm, CgCounters& counters) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  counters.flops += 2.0 * static_cast<double>(a.size());
  counters.bytes += 16.0 * static_cast<double>(a.size());
  if (comm != nullptr) {
    sum = comm->allreduce(sum, minimpi::Op::kSum);
    ++counters.allreduces;
  }
  return sum;
}

// y = x + alpha * y (HPCG's WAXPBY shape).
void xpay(std::span<const double> x, double alpha, std::span<double> y,
          CgCounters& counters) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + alpha * y[i];
  counters.flops += 2.0 * static_cast<double>(x.size());
  counters.bytes += 24.0 * static_cast<double>(x.size());
}

// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y,
          CgCounters& counters) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  counters.flops += 2.0 * static_cast<double>(x.size());
  counters.bytes += 24.0 * static_cast<double>(x.size());
}

}  // namespace

HaloExchanger::HaloExchanger(const Geometry& geometry, minimpi::Comm* comm)
    : geo_(geometry), comm_(comm) {
  lo_.resize(geo_.planePoints());
  hi_.resize(geo_.planePoints());
}

HaloView HaloExchanger::exchange(std::span<const double> x, int baseTag) {
  HaloView halo;
  if (comm_ == nullptr) return halo;
  const std::size_t P = geo_.planePoints();
  const int rank = comm_->rank();
  ++count_;

  // Send own boundary planes, then receive the neighbours'.  Pairwise
  // ordering (send both first) avoids deadlock with thread-backed ranks.
  if (geo_.hasLowerNeighbor()) {
    comm_->send<double>(rank - 1, baseTag, x.subspan(0, P));
  }
  if (geo_.hasUpperNeighbor()) {
    comm_->send<double>(rank + 1, baseTag + 1, x.subspan(x.size() - P, P));
  }
  if (geo_.hasLowerNeighbor()) {
    comm_->recv<double>(rank - 1, baseTag + 1, std::span<double>(lo_));
    halo.lo = lo_.data();
  }
  if (geo_.hasUpperNeighbor()) {
    comm_->recv<double>(rank + 1, baseTag, std::span<double>(hi_));
    halo.hi = hi_.data();
  }
  return halo;
}

CgResult conjugateGradient(const Operator& A, std::span<const double> b,
                           const CgOptions& options, minimpi::Comm* comm) {
  const std::size_t n = A.n();
  REBENCH_REQUIRE(b.size() == n);

  CgResult result;
  CgCounters& counters = result.counters;
  HaloExchanger halos(A.geometry(), comm);

  std::unique_ptr<MgPreconditioner> mg;
  if (options.preconditioned && options.useMultigrid) {
    mg = std::make_unique<MgPreconditioner>(
        variantFromName(A.name()), A.geometry(), options.multigridLevels);
    if (mg->numLevels() < 2) mg.reset();  // geometry too small: SYMGS
  }

  std::vector<double> x(n, 0.0);
  std::vector<double> r(b.begin(), b.end());  // r = b - A*0 = b
  std::vector<double> z(n, 0.0);
  std::vector<double> p(n, 0.0);
  std::vector<double> Ap(n, 0.0);

  auto applyA = [&](std::span<const double> v, std::span<double> out) {
    const HaloView halo = halos.exchange(v, /*baseTag=*/10);
    A.apply(v, halo, out);
    counters.flops += A.applyFlops();
    counters.bytes += A.applyBytes();
  };
  auto applyM = [&](std::span<const double> rr, std::span<double> zz) {
    if (options.preconditioned && mg) {
      MgCounters mgCounters;
      mg->apply(A, rr, zz, &mgCounters);
      counters.flops += mgCounters.flops;
      counters.bytes += mgCounters.bytes;
    } else if (options.preconditioned) {
      A.precondition(rr, zz);
      counters.flops += A.precondFlops();
      counters.bytes += A.precondBytes();
    } else {
      std::copy(rr.begin(), rr.end(), zz.begin());
      counters.bytes += 16.0 * static_cast<double>(n);
    }
  };

  result.initialResidualNorm = std::sqrt(dot(r, r, comm, counters));
  double rtz = 0.0;

  for (int iter = 0; iter < options.maxIterations; ++iter) {
    applyM(r, z);
    const double rtzOld = rtz;
    rtz = dot(r, z, comm, counters);
    if (iter == 0) {
      std::copy(z.begin(), z.end(), p.begin());
      counters.bytes += 16.0 * static_cast<double>(n);
    } else {
      REBENCH_REQUIRE(rtzOld != 0.0);
      xpay(z, rtz / rtzOld, p, counters);  // p = z + beta p
    }
    applyA(p, Ap);
    const double pAp = dot(p, Ap, comm, counters);
    REBENCH_REQUIRE(pAp > 0.0);  // SPD sanity: fails on a broken operator
    const double alpha = rtz / pAp;
    axpy(alpha, p, x, counters);    // x += alpha p
    axpy(-alpha, Ap, r, counters);  // r -= alpha Ap
    const double rnorm = std::sqrt(dot(r, r, comm, counters));
    result.residualHistory.push_back(rnorm);
    ++counters.iterations;
    if (options.tolerance > 0.0 &&
        rnorm <= options.tolerance * result.initialResidualNorm) {
      result.converged = true;
      break;
    }
  }
  counters.haloExchanges = halos.exchangesPerformed();
  result.finalResidualNorm =
      result.residualHistory.empty() ? result.initialResidualNorm
                                     : result.residualHistory.back();
  if (options.tolerance == 0.0) {
    result.converged =
        result.finalResidualNorm < result.initialResidualNorm;
  }
  result.x = std::move(x);
  return result;
}

}  // namespace rebench::hpcg
