// Preconditioned conjugate gradients with HPCG-style accounting.
//
// The solver is MPI-parallel over z-slabs: halo planes are exchanged
// before every operator application, and dot products are allreduced —
// the communication pattern of real HPCG restricted to a 1D
// decomposition (documented substitution; the kernel mix is unchanged).
#pragma once

#include <span>
#include <vector>

#include "hpcg/operator.hpp"
#include "parallel/minimpi.hpp"

namespace rebench::hpcg {

struct CgOptions {
  int maxIterations = 50;  // HPCG runs a fixed 50-iteration cycle
  double tolerance = 0.0;  // 0: always run maxIterations
  bool preconditioned = true;
  /// Use the HPCG-style multigrid V-cycle instead of single-level SYMGS
  /// (requires a coarsenable geometry; falls back to SYMGS otherwise).
  bool useMultigrid = false;
  int multigridLevels = 4;
};

/// Work/traffic accounting in the HPCG spirit: every flop the algorithm
/// performs is counted, nothing else.
struct CgCounters {
  double flops = 0.0;
  double bytes = 0.0;  // modelled DRAM traffic of the same operations
  int iterations = 0;
  int haloExchanges = 0;
  int allreduces = 0;
};

struct CgResult {
  std::vector<double> x;          // local solution slab
  double finalResidualNorm = 0.0;
  double initialResidualNorm = 0.0;
  std::vector<double> residualHistory;
  CgCounters counters;
  bool converged = false;
};

/// Solves A x = b (local slabs) with optional SYMGS preconditioning.
/// `comm` may be null for single-rank solves.
CgResult conjugateGradient(const Operator& A, std::span<const double> b,
                           const CgOptions& options,
                           minimpi::Comm* comm = nullptr);

/// Exchanges z-halo planes of `x` and returns views for the operator.
/// Uses tags [baseTag, baseTag+1].  No-op without a communicator.
class HaloExchanger {
 public:
  HaloExchanger(const Geometry& geometry, minimpi::Comm* comm);

  /// Returns views valid until the next exchange() call.
  HaloView exchange(std::span<const double> x, int baseTag);

  int exchangesPerformed() const { return count_; }

 private:
  const Geometry& geo_;
  minimpi::Comm* comm_;
  std::vector<double> lo_, hi_;
  int count_ = 0;
};

}  // namespace rebench::hpcg
