#include "hpcg/driver.hpp"

#include <cmath>
#include <mutex>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "core/util/timer.hpp"
#include "sim/roofline.hpp"

namespace rebench::hpcg {

namespace {

Geometry rankGeometry(const HpcgConfig& config, int rank) {
  Geometry g;
  g.nx = config.gridSize;
  g.ny = config.gridSize;
  g.nzLocal = config.gridSize;
  g.nzGlobal = config.gridSize * config.numRanks;
  g.zOffset = rank * config.gridSize;
  return g;
}

/// b = A * ones, so the exact solution is the all-ones vector.
std::vector<double> makeRhs(const Operator& A, HaloExchanger& halos) {
  const std::size_t n = A.n();
  std::vector<double> ones(n, 1.0);
  std::vector<double> b(n, 0.0);
  const HaloView halo = halos.exchange(ones, /*baseTag=*/50);
  A.apply(ones, halo, b);
  return b;
}

}  // namespace

HpcgResult runNative(const HpcgConfig& config) {
  REBENCH_REQUIRE(config.numRanks >= 1 && config.gridSize >= 4);
  HpcgResult result;
  result.variant = std::string(variantName(config.variant));
  result.gridSize = config.gridSize;
  result.numRanks = config.numRanks;
  result.iterations = config.iterations;

  std::mutex resultMutex;
  minimpi::run(config.numRanks, [&](minimpi::Comm& comm) {
    minimpi::Comm* commPtr = config.numRanks > 1 ? &comm : nullptr;
    const Geometry geo = rankGeometry(config, comm.rank());
    const auto A = makeOperator(config.variant, geo);
    HaloExchanger rhsHalos(geo, commPtr);
    const std::vector<double> b = makeRhs(*A, rhsHalos);

    CgOptions options;
    options.maxIterations = config.iterations;
    options.useMultigrid = config.multigrid;

    comm.barrier();
    WallTimer timer;
    CgResult cg = conjugateGradient(*A, b, options, commPtr);
    comm.barrier();
    const double seconds = timer.elapsed();

    double err = 0.0;
    for (double xi : cg.x) err = std::max(err, std::abs(xi - 1.0));
    err = commPtr ? comm.allreduce(err, minimpi::Op::kMax) : err;
    const double flops =
        commPtr ? comm.allreduce(cg.counters.flops, minimpi::Op::kSum)
                : cg.counters.flops;
    const double bytes =
        commPtr ? comm.allreduce(cg.counters.bytes, minimpi::Op::kSum)
                : cg.counters.bytes;

    if (comm.rank() == 0) {
      std::lock_guard lock(resultMutex);
      result.seconds = seconds;
      result.gflops = flops / seconds / 1.0e9;
      result.finalResidual = cg.finalResidualNorm;
      result.solutionError = err;
      result.counters = cg.counters;
      result.counters.flops = flops;
      result.counters.bytes = bytes;
      const double drop =
          cg.finalResidualNorm / std::max(cg.initialResidualNorm, 1e-300);
      result.validated = drop < 1.0e-2 && err < 0.5;
    }
  });
  return result;
}

ExecutionEfficiency variantEfficiency(Variant variant,
                                      const MachineModel& machine) {
  const bool intel = machine.vendor == "Intel";
  ExecutionEfficiency eff;
  eff.computeFraction = 1.0;
  switch (variant) {
    case Variant::kCsr:
      // Indirect access + sequential SYMGS keep CSR well below STREAM.
      eff.bandwidthFraction = intel ? 0.71 : 0.75;
      break;
    case Variant::kCsrOpt:
      // The vendor binary removes the index stream and software-prefetches.
      eff.bandwidthFraction = 0.83;
      break;
    case Variant::kMatrixFree:
      // Stencil traffic is tiny; Gauss-Seidel dependency chains make this
      // instruction-throughput-bound, not bandwidth-bound.
      eff.bandwidthFraction = 1.0;
      eff.computeFraction = intel ? 0.019 : 0.027;
      break;
    case Variant::kLfric:
      // The Helmholtz kernel vectorises poorly on AVX-512 (short columns,
      // gathers); Rome's narrower FMA units lose less.
      eff.bandwidthFraction = intel ? 0.40 : 0.79;
      break;
  }
  return eff;
}

bool variantAvailable(Variant variant, const MachineModel& machine) {
  if (variant == Variant::kCsrOpt) {
    // Intel MKL's optimised HPCG ships x86 AVX binaries only: Table 2
    // reports "N/A" on AMD Rome.
    return machine.vendor == "Intel";
  }
  return machine.device == DeviceType::kCpu;
}

HpcgResult runModeled(const HpcgConfig& config, const MachineModel& machine,
                      int calibrationGrid, const std::string& noiseSalt) {
  if (!variantAvailable(config.variant, machine)) {
    throw NotFoundError("HPCG variant '" +
                        std::string(variantName(config.variant)) +
                        "' is not available on " + machine.displayName);
  }
  // Measure per-point-per-iteration work by running the real solver small.
  HpcgConfig calib = config;
  calib.gridSize = calibrationGrid;
  calib.numRanks = 1;
  calib.iterations = std::min(config.iterations, 10);
  const HpcgResult calibrated = runNative(calib);
  const double calibPoints = static_cast<double>(calibrationGrid) *
                             calibrationGrid * calibrationGrid;
  const double flopsPerPointIter =
      calibrated.counters.flops / calibPoints / calib.iterations;
  const double bytesPerPointIter =
      calibrated.counters.bytes / calibPoints / calib.iterations;

  const double totalPoints = static_cast<double>(config.gridSize) *
                             config.gridSize * config.gridSize *
                             config.numRanks;
  KernelProfile profile;
  profile.flops = flopsPerPointIter * totalPoints * config.iterations;
  profile.bytesRead = 0.75 * bytesPerPointIter * totalPoints *
                      config.iterations;
  profile.bytesWritten =
      0.25 * bytesPerPointIter * totalPoints * config.iterations;

  const ExecutionEfficiency eff =
      variantEfficiency(config.variant, machine);
  const std::string key = "hpcg:" + machine.id + ":" +
                          std::string(variantName(config.variant)) +
                          noiseSalt;
  SimulatedTime sim = simulateKernel(machine, profile, eff, key);

  // Communication: ~5 allreduces per iteration at a few microseconds each
  // (single node), plus halo plane copies — folded into a per-iteration
  // latency term.
  const double commSeconds =
      config.iterations *
      (5.0 * 3.0e-6 * std::log2(std::max(2, config.numRanks)));

  HpcgResult result;
  result.variant = std::string(variantName(config.variant));
  result.gridSize = config.gridSize;
  result.numRanks = config.numRanks;
  result.iterations = config.iterations;
  result.seconds = sim.seconds + commSeconds;
  result.gflops = profile.flops / result.seconds / 1.0e9;
  result.finalResidual = calibrated.finalResidual;
  result.solutionError = calibrated.solutionError;
  result.validated = calibrated.validated;
  result.counters = calibrated.counters;
  result.counters.flops = profile.flops;
  result.counters.bytes = profile.totalBytes();
  return result;
}

std::string formatOutput(const HpcgResult& result) {
  std::string out;
  out += "HPCG-Benchmark (rebench reproduction)\n";
  out += "Variant: " + result.variant + "\n";
  out += "Local grid: " + std::to_string(result.gridSize) + "^3, ranks: " +
         std::to_string(result.numRanks) + " (MPI only)\n";
  out += "CG iterations: " + std::to_string(result.iterations) + "\n";
  out += "Final residual norm: " + str::fixed(result.finalResidual, 6) +
         "\n";
  out += "Solution inf-error vs exact: " +
         str::fixed(result.solutionError, 6) + "\n";
  out += "Total flops: " + str::fixed(result.counters.flops / 1.0e9, 3) +
         " Gflop in " + str::fixed(result.seconds, 5) + " s\n";
  out += std::string(result.validated ? "VALID" : "INVALID") +
         " with a GFLOP/s rating of " + str::fixed(result.gflops, 2) + "\n";
  return out;
}

}  // namespace rebench::hpcg
