// Geometric multigrid preconditioner in the shape of real HPCG's:
// a fixed hierarchy coarsened by 2 per dimension, one SYMGS pre-smooth
// and one post-smooth per level, injection transfers, and a single SYMGS
// sweep as the coarsest-level "solve".
//
// Like real HPCG's MG, smoothing is rank-local (halos frozen); the
// hierarchy therefore composes with the distributed CG without extra
// communication per level.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "hpcg/operator.hpp"

namespace rebench::hpcg {

struct MgCounters {
  double flops = 0.0;
  double bytes = 0.0;
  int smootherSweeps = 0;
};

class MgPreconditioner {
 public:
  /// Builds up to `maxLevels` levels below (and including) `fineGeometry`;
  /// coarsening stops early when a dimension stops being even or drops
  /// below 4 (HPCG's own constraint is divisibility by 8 on each rank).
  MgPreconditioner(Variant variant, const Geometry& fineGeometry,
                   int maxLevels = 4);

  int numLevels() const { return static_cast<int>(levels_.size()); }

  /// z = M^{-1} r via one V-cycle.  `fineA` must be the operator the
  /// hierarchy was built for (level 0).
  void apply(const Operator& fineA, std::span<const double> r,
             std::span<double> z, MgCounters* counters = nullptr) const;

  /// Estimated cost of one full apply (for roofline projection).
  double applyBytes() const;
  double applyFlops() const;

 private:
  struct Level {
    Geometry geometry;
    std::unique_ptr<Operator> A;  // null on level 0 (caller's operator)
    // Work vectors, mutable across applies.
    mutable std::vector<double> b, x, r;
  };

  void vCycle(const Operator& A, int depth, MgCounters* counters) const;

  static Geometry coarsen(const Geometry& fine);
  static bool canCoarsen(const Geometry& g);

  Variant variant_;
  std::vector<Level> levels_;
};

}  // namespace rebench::hpcg
