// HPCG benchmark driver: sets up b = A·1, runs preconditioned CG, checks
// the solution, and reports GFlop/s — natively (wall-clock) or projected
// onto a paper platform (roofline over the solver's exact counters).
#pragma once

#include <optional>
#include <string>

#include "hpcg/cg.hpp"
#include "sim/machine.hpp"
#include "sim/roofline.hpp"

namespace rebench::hpcg {

struct HpcgConfig {
  Variant variant = Variant::kCsr;
  int gridSize = 32;   // per-rank cube edge (paper runs use 104 per rank)
  int numRanks = 1;
  int iterations = 50;
  /// Precondition with the HPCG-style multigrid V-cycle instead of
  /// single-level SYMGS (the Table 2 calibration uses SYMGS).
  bool multigrid = false;
};

struct HpcgResult {
  std::string variant;
  int gridSize = 0;
  int numRanks = 0;
  int iterations = 0;
  double gflops = 0.0;
  double seconds = 0.0;
  double finalResidual = 0.0;
  double solutionError = 0.0;  // ||x - 1||_inf after the run
  bool validated = false;
  CgCounters counters;
};

/// Runs the benchmark natively with minimpi ranks and wall-clock timing.
HpcgResult runNative(const HpcgConfig& config);

/// Projects a paper-scale configuration onto `machine`.  The counters are
/// measured by executing the real solver at `calibrationGrid` (per-rank)
/// size, then scaled to `config` — per-point work is size-independent for
/// these operators.  The per-(variant, machine) efficiency calibration is
/// in variantEfficiency() below.
HpcgResult runModeled(const HpcgConfig& config, const MachineModel& machine,
                      int calibrationGrid = 24,
                      const std::string& noiseSalt = {});

/// Calibrated roofline efficiency for a variant on a machine.  These four
/// knobs per platform are the substitution for "the authors' compilers and
/// vendor binaries"; EXPERIMENTS.md documents the calibration.
ExecutionEfficiency variantEfficiency(Variant variant,
                                      const MachineModel& machine);

/// True when the variant exists on the platform (Intel's vendor binary is
/// x86/AVX-only: "N/A" on AMD Rome in Table 2 and on aarch64).
bool variantAvailable(Variant variant, const MachineModel& machine);

/// Renders the benchmark's stdout (parsed by the framework regexes).
std::string formatOutput(const HpcgResult& result);

}  // namespace rebench::hpcg
