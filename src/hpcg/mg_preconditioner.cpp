#include "hpcg/mg_preconditioner.hpp"

#include <algorithm>

#include "core/util/error.hpp"

namespace rebench::hpcg {

bool MgPreconditioner::canCoarsen(const Geometry& g) {
  return g.nx % 2 == 0 && g.ny % 2 == 0 && g.nzLocal % 2 == 0 &&
         g.nzGlobal % 2 == 0 && g.zOffset % 2 == 0 && g.nx >= 8 &&
         g.ny >= 8 && g.nzLocal >= 8;
}

Geometry MgPreconditioner::coarsen(const Geometry& fine) {
  Geometry coarse;
  coarse.nx = fine.nx / 2;
  coarse.ny = fine.ny / 2;
  coarse.nzLocal = fine.nzLocal / 2;
  coarse.nzGlobal = fine.nzGlobal / 2;
  coarse.zOffset = fine.zOffset / 2;
  return coarse;
}

MgPreconditioner::MgPreconditioner(Variant variant,
                                   const Geometry& fineGeometry,
                                   int maxLevels)
    : variant_(variant) {
  REBENCH_REQUIRE(maxLevels >= 1);
  Geometry geometry = fineGeometry;
  for (int depth = 0; depth < maxLevels; ++depth) {
    Level level;
    level.geometry = geometry;
    // Level 0 reuses the caller's operator; coarse levels own theirs.
    if (depth > 0) level.A = makeOperator(variant_, geometry);
    const std::size_t count = geometry.localPoints();
    level.b.assign(count, 0.0);
    level.x.assign(count, 0.0);
    level.r.assign(count, 0.0);
    levels_.push_back(std::move(level));
    if (depth + 1 == maxLevels || !canCoarsen(geometry)) break;
    geometry = coarsen(geometry);
  }
}

namespace {

/// coarse[I,J,K] = fine[2I,2J,2K] — HPCG's injection restriction.
void restrictInjection(const Geometry& fineGeo, const Geometry& coarseGeo,
                       std::span<const double> fine,
                       std::span<double> coarse) {
  for (int K = 0; K < coarseGeo.nzLocal; ++K) {
    for (int J = 0; J < coarseGeo.ny; ++J) {
      for (int I = 0; I < coarseGeo.nx; ++I) {
        coarse[coarseGeo.index(I, J, K)] =
            fine[fineGeo.index(2 * I, 2 * J, 2 * K)];
      }
    }
  }
}

/// fine[2I,2J,2K] += coarse[I,J,K] — HPCG's injection prolongation.
void prolongInjection(const Geometry& coarseGeo, const Geometry& fineGeo,
                      std::span<const double> coarse,
                      std::span<double> fine) {
  for (int K = 0; K < coarseGeo.nzLocal; ++K) {
    for (int J = 0; J < coarseGeo.ny; ++J) {
      for (int I = 0; I < coarseGeo.nx; ++I) {
        fine[fineGeo.index(2 * I, 2 * J, 2 * K)] +=
            coarse[coarseGeo.index(I, J, K)];
      }
    }
  }
}

void accumulate(MgCounters* counters, const Operator& A, bool smoother,
                bool applied) {
  if (counters == nullptr) return;
  if (smoother) {
    counters->flops += A.precondFlops();
    counters->bytes += A.precondBytes();
    counters->smootherSweeps += 1;
  }
  if (applied) {
    counters->flops += A.applyFlops();
    counters->bytes += A.applyBytes();
  }
}

}  // namespace

void MgPreconditioner::vCycle(const Operator& A, int depth,
                              MgCounters* counters) const {
  const Level& level = levels_[depth];
  std::fill(level.x.begin(), level.x.end(), 0.0);

  if (depth == numLevels() - 1) {
    // Coarsest "solve": one SYMGS sweep, exactly like reference HPCG.
    A.smoothInPlace(level.b, level.x);
    accumulate(counters, A, /*smoother=*/true, /*applied=*/false);
    return;
  }

  // Pre-smooth.
  A.smoothInPlace(level.b, level.x);
  accumulate(counters, A, true, false);

  // Residual (rank-local: zero halos during preconditioning).
  A.apply(level.x, HaloView{}, level.r);
  accumulate(counters, A, false, true);
  for (std::size_t i = 0; i < level.r.size(); ++i) {
    level.r[i] = level.b[i] - level.r[i];
  }

  // Restrict, recurse, prolong.
  const Level& coarse = levels_[depth + 1];
  restrictInjection(level.geometry, coarse.geometry, level.r, coarse.b);
  vCycle(*coarse.A, depth + 1, counters);
  prolongInjection(coarse.geometry, level.geometry, coarse.x, level.x);

  // Post-smooth.
  A.smoothInPlace(level.b, level.x);
  accumulate(counters, A, true, false);
}

void MgPreconditioner::apply(const Operator& fineA,
                             std::span<const double> r, std::span<double> z,
                             MgCounters* counters) const {
  REBENCH_REQUIRE(r.size() == fineA.n() && z.size() == fineA.n());
  REBENCH_REQUIRE(fineA.n() == levels_.front().geometry.localPoints());
  const Level& top = levels_.front();
  std::copy(r.begin(), r.end(), top.b.begin());
  vCycle(fineA, 0, counters);
  std::copy(top.x.begin(), top.x.end(), z.begin());
}

double MgPreconditioner::applyBytes() const {
  double bytes = 0.0;
  for (int depth = 0; depth < numLevels(); ++depth) {
    const Level& level = levels_[depth];
    const Operator* A = depth == 0 ? nullptr : level.A.get();
    // Level 0's operator belongs to the caller; estimate with a fresh
    // footprint only when owned.  Use per-point costs of a same-variant
    // operator: all levels share the variant, so scale level 0 from
    // level 1 when available.
    if (A != nullptr) {
      const bool coarsest = depth == numLevels() - 1;
      bytes += A->precondBytes() * (coarsest ? 1.0 : 2.0);
      if (!coarsest) bytes += A->applyBytes();
    }
  }
  // Level 0 (not owned): 2 smooths + 1 apply, scaled 8x from level 1.
  if (numLevels() > 1) {
    const Operator& l1 = *levels_[1].A;
    bytes += 8.0 * (2.0 * l1.precondBytes() + l1.applyBytes());
  }
  return bytes;
}

double MgPreconditioner::applyFlops() const {
  double flops = 0.0;
  for (int depth = 1; depth < numLevels(); ++depth) {
    const Operator& A = *levels_[depth].A;
    const bool coarsest = depth == numLevels() - 1;
    flops += A.precondFlops() * (coarsest ? 1.0 : 2.0);
    if (!coarsest) flops += A.applyFlops();
  }
  if (numLevels() > 1) {
    const Operator& l1 = *levels_[1].A;
    flops += 8.0 * (2.0 * l1.precondFlops() + l1.applyFlops());
  }
  return flops;
}

}  // namespace rebench::hpcg
