// The `rebench` command-line tool — the user-facing surface of the
// framework, shaped after the ReFrame invocations in the paper's appendix:
//
//   rebench list-systems
//   rebench list-packages
//   rebench spec 'hpgmg%gcc' --system archer2
//   rebench run --benchmark babelstream --system noctua2 -S model=omp \
//               --perflog perf.log --repeats 3 --account ec999
//   rebench run --benchmark hpgmg --system archer2
//   rebench report --perflog perf.log --fom Triad
//   rebench history --perflog perf.log --detect
#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <thread>
#include <vector>

#include "babelstream/testcase.hpp"
#include "cli/args.hpp"
#include "core/concretizer/concretizer.hpp"
#include "core/framework/pipeline.hpp"
#include "core/history/history.hpp"
#include "core/infer/controller.hpp"
#include "core/obs/json.hpp"
#include "core/obs/metrics.hpp"
#include "core/obs/openmetrics.hpp"
#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/postproc/chrome_export.hpp"
#include "core/postproc/critical_path.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/profile.hpp"
#include "core/postproc/trace_report.hpp"
#include "core/postproc/plot.hpp"
#include "core/postproc/hygiene.hpp"
#include "core/postproc/regression.hpp"
#include "core/postproc/stats.hpp"
#include "core/service/queue.hpp"
#include "core/service/record.hpp"
#include "core/service/service.hpp"
#include "core/store/build_cache.hpp"
#include "core/store/manifest.hpp"
#include "core/store/object_store.hpp"
#include "core/telemetry/bus.hpp"
#include "core/telemetry/http.hpp"
#include "core/telemetry/probe.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpcg/testcase.hpp"
#include "hpgmg/testcase.hpp"
#include "suite/builtin_suite.hpp"

namespace rebench::cli {
namespace {

int usage() {
  std::cout <<
      "rebench — automated and reproducible benchmarking\n"
      "\n"
      "subcommands:\n"
      "  list-systems                     configured systems/partitions\n"
      "  list-packages                    recipe repository contents\n"
      "  spec <spec> --system S           concretize a spec on a system\n"
      "       [--env-file F] [--trace]       (or a user-authored env file)\n"
      "  run --benchmark B --system S     run a benchmark (babelstream |\n"
      "      [-S key=value]... [--perflog F] [--repeats N] [--account A]\n"
      "      [--trace DIR] [--faults SPEC]  hpcg | hpgmg) through the\n"
      "      [--retries N] [--backoff-base S] [--backoff-max S] pipeline\n"
      "      [--store DIR] [--no-cache]     --store keeps a content-\n"
      "      [--metrics-out FILE]           addressed artifact store +\n"
      "                                     provenance manifest and appends\n"
      "                                     the campaign's FOMs to the\n"
      "                                     performance history; builds are\n"
      "                                     reused only on exact provenance\n"
      "                                     match (--no-cache disables\n"
      "                                     reuse); --metrics-out exports\n"
      "                                     the metrics registry + FOMs as\n"
      "                                     OpenMetrics text\n"
      "      [--ci-halfwidth R]             adaptive run-length control:\n"
      "      [--min-repeats N]              repeat each test until every\n"
      "      [--max-repeats N]              FOM mean's 95% CI (ESS-\n"
      "                                     corrected) is within +/-R\n"
      "                                     relative half-width, between\n"
      "                                     N_min and N_max repeats\n"
      "      [--probe sim|real]             per-stage resource accounting:\n"
      "                                     rusage deltas around build/run\n"
      "                                     as x:rusage_* perflog extras,\n"
      "                                     telemetry.probe spans and\n"
      "                                     manifest facets ('sim' is the\n"
      "                                     deterministic synthetic source;\n"
      "                                     'real' reads getrusage)\n"
      "  suite --system S [--tag T]       run the builtin suite, ReFrame\n"
      "        [-n PAT] [-x PAT] [--perflog F]  style selection (-n/-x)\n"
      "        [--trace DIR] [--faults FILE|SPEC] [--retries N]\n"
      "        [--repeats N] [--resume DIR] [--quarantine-after N]\n"
      "        [--store DIR] [--no-cache] [--jobs N] [--lanes N]\n"
      "        [--metrics-out FILE] [--ci-halfwidth R]\n"
      "        [--min-repeats N] [--max-repeats N] [--probe sim|real]\n"
      "                                     --faults injects deterministic\n"
      "                                     failures (seed=..,crash=..,\n"
      "                                     node=..,preempt=..,build=..,\n"
      "                                     corrupt=..,teldrop=..); --resume\n"
      "                                     journals completed runs to DIR\n"
      "                                     and skips them on rerun; --jobs\n"
      "                                     runs campaigns on N workers with\n"
      "                                     byte-identical perflog/trace/\n"
      "                                     manifest output (kernel threads\n"
      "                                     via REBENCH_THREADS env);\n"
      "                                     --lanes sets the virtual-lane\n"
      "                                     width profiling stamps into the\n"
      "                                     trace (default 8, jobs-\n"
      "                                     independent)\n"
      "  replay <manifest>                re-execute a campaign manifest\n"
      "                                     from scratch and diff the\n"
      "                                     regenerated perflog/trace bytes\n"
      "                                     against the recorded hashes\n"
      "                                     (exit 1 on divergence)\n"
      "  trace-report <file> [--tree]     per-stage timing + metrics from a\n"
      "               [--json] [--chrome F]  trace JSONL (--trace output);\n"
      "                                     --json emits the machine-\n"
      "                                     readable report, --chrome a\n"
      "                                     chrome://tracing export\n"
      "  profile <file> [--json]          campaign schedule profiling from\n"
      "          [--chrome F]               a trace: lane Gantt + busy/idle/\n"
      "          [--diff A B]               blocked utilization + critical\n"
      "          [--threshold 0.05]         path with self/child attribution\n"
      "                                     (needs exec.worker lane stamps;\n"
      "                                     run-mode traces profile on one\n"
      "                                     lane); --chrome exports the\n"
      "                                     catapult JSON, --diff aligns\n"
      "                                     two traces by span path and\n"
      "                                     exits 1 on duration regressions\n"
      "                                     above the threshold\n"
      "  env --system S                   captured system environment\n"
      "  audit --perflog F [--strict]     Bailey/Hoefler-Belli hygiene audit\n"
      "        [--manifest M]               (--manifest also flags results\n"
      "                                     from stale artifacts)\n"
      "  report --perflog F [--fom NAME]  tabulate/plot perflog contents;\n"
      "         [--stats] [--plot]           --frame-cache keeps a verified\n"
      "         [--frame-cache DIR]          columnar copy of the perflog\n"
      "                                     (content-hash keyed; reused\n"
      "                                     until the file changes)\n"
      "  history [<test> [<target>]]      longitudinal FOM history from a\n"
      "          --store DIR [--json]       campaign store: per-(test,\n"
      "          [--window N] [--check]     target, fom) trend tables with\n"
      "          [--threshold 0.05]         sparklines, rolling mean/stddev\n"
      "                                     and deterministic changepoint\n"
      "                                     flags; --check gates the newest\n"
      "                                     record against the rolling\n"
      "                                     baseline: a threshold-sized\n"
      "                                     drop regresses only when it is\n"
      "                                     statistically significant\n"
      "                                     (baseline CI band), justified\n"
      "                                     by an EDM changepoint scan;\n"
      "                                     --json emits the machine-\n"
      "                                     readable verdicts (exit 0 ok,\n"
      "                                     1 on regression, 2 usage/no\n"
      "                                     records)\n"
      "  history --perflog F [--detect]   legacy perflog history +\n"
      "          [--window N] [--sigmas X]  regression detection\n"
      "          [--frame-cache DIR]\n"
      "  compare --before A --after B     before/after perflog comparison\n"
      "          [--threshold 0.05]         (CI gate: exit 1 on regression)\n"
      "          [--frame-cache DIR]\n"
      "  submit --queue DIR ...           enqueue a run/suite invocation\n"
      "                                     for `serve` (same flags as\n"
      "                                     run/suite; atomic + idempotent\n"
      "                                     by content hash)\n"
      "  serve --queue DIR --store DIR    crash-safe continuous-\n"
      "        [--once] [--jobs N]          benchmarking daemon: drains the\n"
      "        [--stage-timeout S]          queue with run-level\n"
      "        [--submission-timeout S]     memoization (verdicts: cached |\n"
      "        [--quarantine-after N]       ran:clean | ran:regressed |\n"
      "        [--trace DIR]                failed:<class>), write-ahead\n"
      "        [--metrics-out FILE]         journal for exactly-once crash\n"
      "        [--request-drain]            resume, watchdogs, crash-loop\n"
      "        [--clear-drain]              quarantine and graceful drain\n"
      "        [--listen HOST:PORT]         (SIGTERM or --request-drain);\n"
      "                                     health snapshot refreshed in\n"
      "                                     QUEUE/health.json after every\n"
      "                                     verdict; --listen exposes the\n"
      "                                     live HTTP status endpoint\n"
      "                                     (GET /health | /metrics |\n"
      "                                     /verdicts?since=N |\n"
      "                                     /submissions/<id>; port 0 =\n"
      "                                     ephemeral, bound address in\n"
      "                                     QUEUE/endpoint.addr); crashes\n"
      "                                     and failed:* verdicts dump the\n"
      "                                     event-bus ring to\n"
      "                                     QUEUE/flightrec-<seq>.jsonl\n"
      "  status --queue DIR [--follow]    live view of a serve queue via\n"
      "         [--fetch PATH]              the --listen endpoint (fallback:\n"
      "                                     health.json), plus the newest\n"
      "                                     flight record; --fetch prints\n"
      "                                     one endpoint response verbatim,\n"
      "                                     --follow streams verdicts as\n"
      "                                     they are filed\n";
  return 2;
}

int listSystems() {
  const SystemRegistry systems = builtinSystems();
  AsciiTable table("configured systems:");
  table.setHeader({"system:partition", "processor", "nodes", "scheduler",
                   "launcher", "model"});
  for (const std::string& name : systems.systemNames()) {
    const SystemConfig& sys = systems.get(name);
    for (const PartitionConfig& part : sys.partitions) {
      table.addRow({sys.name + ":" + part.name, part.processor.model,
                    std::to_string(part.numNodes),
                    std::string(schedulerName(part.scheduler)),
                    std::string(launcherName(part.launcher)),
                    part.machineModel.empty() ? "(native)"
                                              : part.machineModel});
    }
  }
  std::cout << table.render();
  return 0;
}

int listPackages() {
  const PackageRepository repo = builtinRepository();
  AsciiTable table("package recipes:");
  table.setHeader({"package", "newest", "versions", "description"});
  for (const std::string& name : repo.packageNames()) {
    const PackageRecipe& recipe = repo.get(name);
    table.addRow({name,
                  recipe.versions().empty()
                      ? "-"
                      : recipe.versions().front().toString(),
                  std::to_string(recipe.versions().size()),
                  recipe.description()});
  }
  std::cout << table.render();
  return 0;
}

/// Reads a whole file into a string; throws Error when unreadable.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot read file '" + path + "'");
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

int showSpec(const Args& args) {
  if (args.positionals().empty()) {
    std::cerr << "spec: missing spec string\n";
    return 2;
  }
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  // --env-file lets a user concretize against a hand-authored system
  // environment (see `rebench env` for the format) without recompiling.
  SystemEnvironment environment;
  if (auto envFile = args.option("env-file")) {
    environment = parseEnvironmentConfig(slurp(*envFile));
  } else {
    environment =
        systems.resolve(args.optionOr("system", "local")).first->environment;
  }
  Concretizer concretizer(repo, environment);
  const ConcretizationResult result =
      concretizer.concretize(Spec::parse(args.positionals().front()));
  std::cout << result.root->tree();
  if (args.hasFlag("trace")) {
    std::cout << "\ntrace:\n";
    for (const std::string& line : result.trace) {
      std::cout << "  " << line << "\n";
    }
  }
  return 0;
}

/// Builds the run-mode test from a normalized invocation (directly from
/// the CLI flags, or re-hydrated from a campaign manifest by `replay`).
RegressionTest buildTest(const store::CampaignInvocation& inv) {
  if (inv.benchmark == "babelstream") {
    babelstream::BabelstreamTestOptions options;
    if (inv.ntimes > 0) options.ntimes = inv.ntimes;
    for (const auto& [key, value] : inv.settings) {
      if (key == "model") options.model = value;
      if (key == "array_size") options.arraySize = std::stoull(value);
    }
    return babelstream::makeBabelstreamTest(options);
  }
  if (inv.benchmark == "hpcg") {
    hpcg::HpcgTestOptions options;
    for (const auto& [key, value] : inv.settings) {
      if (key == "operator") options.variant = hpcg::variantFromName(value);
      if (key == "num_tasks") options.numTasks = std::stoi(value);
      if (key == "grid") options.gridSize = std::stoi(value);
      if (key == "multigrid") options.multigrid = value == "1" || value == "true";
    }
    return hpcg::makeHpcgTest(options);
  }
  if (inv.benchmark == "hpgmg") {
    hpgmg::HpgmgTestOptions options;
    for (const auto& [key, value] : inv.settings) {
      if (key == "num_tasks") options.numTasks = std::stoi(value);
      if (key == "num_tasks_per_node") {
        options.numTasksPerNode = std::stoi(value);
      }
      if (key == "num_cpus_per_task") {
        options.numCpusPerTask = std::stoi(value);
      }
      if (key == "log2_box_dim") options.log2BoxDim = std::stoi(value);
      if (key == "boxes_per_rank") {
        options.targetBoxesPerRank = std::stoi(value);
      }
    }
    return hpgmg::makeHpgmgTest(options);
  }
  throw ParseError("--benchmark must be babelstream, hpcg or hpgmg (got '" +
                   inv.benchmark + "')");
}

int showEnv(const Args& args) {
  const SystemRegistry systems = builtinSystems();
  const auto [sys, part] = systems.resolve(args.optionOr("system", "local"));
  std::cout << sys->environment.renderConfig();
  return 0;
}

int audit(const Args& args) {
  const auto path = args.option("perflog");
  if (!path) {
    std::cerr << "audit: --perflog required\n";
    return 2;
  }
  HygieneOptions options;
  options.requireReferences = args.hasFlag("strict");
  auto findings = auditPerflogFile(*path, options);
  if (auto manifestPath = args.option("manifest")) {
    const store::CampaignManifest manifest =
        store::CampaignManifest::read(*manifestPath);
    const PerfLog::LenientParse parsed = PerfLog::readFileLenient(*path);
    const auto stale = auditAgainstManifest(parsed.entries, manifest);
    findings.insert(findings.end(), stale.begin(), stale.end());
  }
  std::cout << renderHygieneReport(findings);
  return findings.empty() ? 0 : 1;
}

/// Observability state for one CLI invocation; tracing is active when
/// --trace DIR was given (one trace.jsonl per invocation lands in DIR),
/// metrics collection also when --metrics-out FILE asked for an
/// OpenMetrics export without a trace.
struct TraceSession {
  std::optional<std::string> dir;
  std::optional<std::string> metricsOut;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  explicit TraceSession(const Args& args)
      : dir(args.option("trace")), metricsOut(args.option("metrics-out")) {}
  bool active() const { return dir.has_value(); }

  void attach(PipelineOptions& options) {
    if (active()) options.tracer = &tracer;
    if (active() || metricsOut.has_value()) options.metrics = &metrics;
  }
  /// Trace bytes are serialized exactly once per campaign (before any
  /// artifact is stored), so the --trace file and the manifest's "trace"
  /// artifact hash describe the same bytes.
  std::string serialize() { return tracer.toJsonl(&metrics); }
  void write(const std::string& bytes) {
    if (!active()) return;
    std::filesystem::create_directories(*dir);
    const std::string path =
        (std::filesystem::path(*dir) / "trace.jsonl").string();
    std::ofstream out(path);
    out << bytes;
    std::cout << "trace written to " << path << "\n";
  }

  /// --metrics-out: the registry plus per-(test, target, fom) aggregates
  /// as OpenMetrics text.  Registry merge order and aggregate order are
  /// both canonical, so these bytes are identical at every --jobs width.
  void writeMetrics(std::span<const history::FomAggregate> foms) {
    if (!metricsOut.has_value()) return;
    std::vector<obs::MetricSample> samples;
    auto labelsFor = [](const history::FomAggregate& fom) {
      return std::map<std::string, std::string>{
          {"test", fom.test}, {"target", fom.target}, {"fom", fom.fom}};
    };
    // Grouped by family ("rebench_fom_stat", then "..._repeats", then
    // the inference gauges "..._ci_halfwidth" / "..._ess") because the
    // renderer emits one # TYPE header per run of equal family names.
    for (const history::FomAggregate& fom : foms) {
      for (const auto& [stat, value] :
           {std::pair<const char*, double>{"mean", fom.mean},
            {"min", fom.min},
            {"max", fom.max}}) {
        auto labels = labelsFor(fom);
        labels["stat"] = stat;
        samples.push_back({"rebench_fom_stat", std::move(labels), value});
      }
    }
    for (const history::FomAggregate& fom : foms) {
      samples.push_back({"rebench_fom_repeats", labelsFor(fom),
                         static_cast<double>(fom.repeats)});
    }
    for (const history::FomAggregate& fom : foms) {
      samples.push_back(
          {"rebench_fom_ci_halfwidth", labelsFor(fom), fom.ciHalfwidth});
    }
    for (const history::FomAggregate& fom : foms) {
      samples.push_back({"rebench_fom_ess", labelsFor(fom), fom.ess});
    }
    // Family-sorted so the extras section obeys the same lexicographic
    // order as the registry dump (metrics_lint checks this); the sort is
    // stable, keeping the canonical per-family sample order.
    std::stable_sort(samples.begin(), samples.end(),
                     [](const obs::MetricSample& a,
                        const obs::MetricSample& b) {
                       return a.family < b.family;
                     });
    std::ofstream out(*metricsOut, std::ios::binary);
    if (!out) throw Error("cannot write metrics file '" + *metricsOut + "'");
    out << obs::renderOpenMetrics(metrics, samples);
    std::cout << "metrics written to " << *metricsOut << "\n";
  }
};

/// Validates the run-length flags shared by run/suite/submit: --repeats
/// and the adaptive --min-repeats/--max-repeats/--ci-halfwidth family
/// must be positive.  A negative value such as `--repeats -1` parses as
/// a valueless flag (the '-1' token looks like an option to the
/// parser), so both spellings are rejected here.  Returns the error
/// message, or nullopt when the flags are sound.
std::optional<std::string> runLengthFlagError(const Args& args) {
  for (const std::string_view name :
       {"repeats", "min-repeats", "max-repeats"}) {
    if (args.hasFlag(name)) {
      return "--" + std::string(name) + " expects a positive integer";
    }
    if (args.option(name).has_value() && args.intOptionOr(name, 1) <= 0) {
      return "--" + std::string(name) + " must be >= 1 (got " +
             *args.option(name) + ")";
    }
  }
  if (args.hasFlag("ci-halfwidth")) {
    return std::string(
        "--ci-halfwidth expects a positive relative half-width "
        "(e.g. 0.05)");
  }
  if (args.option("ci-halfwidth").has_value() &&
      args.doubleOptionOr("ci-halfwidth", 1.0) <= 0.0) {
    return "--ci-halfwidth must be > 0 (got " +
           *args.option("ci-halfwidth") + ")";
  }
  const int minRepeats = args.intOptionOr("min-repeats", -1);
  const int maxRepeats = args.intOptionOr("max-repeats", -1);
  if (minRepeats > 0 && maxRepeats > 0 && maxRepeats < minRepeats) {
    return std::string("--max-repeats must be >= --min-repeats");
  }
  return std::nullopt;
}

/// Validates --probe (shared by run/suite/submit): it must name a real
/// probe mode; a bare `--probe` parses as a valueless flag.
std::optional<std::string> probeFlagError(const Args& args) {
  if (args.hasFlag("probe")) {
    return std::string("--probe expects a mode ('sim' or 'real')");
  }
  const std::string name = args.optionOr("probe", "");
  telemetry::ProbeMode mode = telemetry::ProbeMode::kOff;
  if (!telemetry::probeModeFromName(name, &mode)) {
    return "--probe must be 'sim' or 'real' (got '" + name + "')";
  }
  return std::nullopt;
}

/// A valueless `--frame-cache` parses as a flag; reject it explicitly so a
/// forgotten DIR doesn't silently fall back to parsing the perflog every
/// invocation.
std::optional<std::string> frameCacheFlagError(const Args& args) {
  if (args.hasFlag("frame-cache")) {
    return std::string("--frame-cache expects a directory");
  }
  return std::nullopt;
}

/// Prints the adaptive controller's per-(test, target, fom) decisions.
void printInferenceDecisions(const infer::ControllerReport& inference) {
  for (const infer::FomDecision& d : inference.decisions) {
    std::cout << "infer: " << d.test << " @ " << d.target << " " << d.fom
              << ": mean " << str::fixed(d.estimate.mean, 2) << " +/- "
              << str::fixed(d.estimate.ciHalfwidth, 2) << " ("
              << str::fixed(d.estimate.ciRelative * 100.0, 2)
              << "% rel, ess " << str::fixed(d.estimate.ess, 1)
              << ") after " << d.estimate.n << " repeat(s) in " << d.rounds
              << " round(s)" << (d.converged ? "" : " [hit --max-repeats]")
              << "\n";
  }
}

/// Normalizes the run/suite CLI flags into the invocation record a
/// campaign manifest stores (and `rebench replay` re-executes).
store::CampaignInvocation invocationFromArgs(const Args& args,
                                             const std::string& mode) {
  store::CampaignInvocation inv;
  inv.mode = mode;
  inv.system = args.optionOr("system", "local");
  inv.account = args.optionOr("account", "ec999");
  inv.repeats = args.intOptionOr("repeats", 1);
  inv.benchmark = args.optionOr("benchmark", "");
  inv.ntimes = args.intOptionOr("ntimes", -1);
  inv.settings = args.settings();
  inv.tag = args.optionOr("tag", "");
  inv.namePattern = args.optionOr("n", "");
  inv.excludePattern = args.optionOr("x", "");
  inv.faults = args.optionOr("faults", "");
  inv.retries = args.intOptionOr("retries", -1);
  inv.backoffBase = args.doubleOptionOr("backoff-base", -1.0);
  inv.backoffMultiplier = args.doubleOptionOr("backoff-mult", -1.0);
  inv.backoffMax = args.doubleOptionOr("backoff-max", -1.0);
  inv.quarantineAfter = args.intOptionOr("quarantine-after", -1);
  inv.stageTimeout = args.doubleOptionOr("stage-timeout", -1.0);
  inv.lanes = args.intOptionOr("lanes", -1);
  inv.ciHalfwidth = args.doubleOptionOr("ci-halfwidth", -1.0);
  inv.minRepeats = args.intOptionOr("min-repeats", -1);
  inv.maxRepeats = args.intOptionOr("max-repeats", -1);
  inv.withStore = args.option("store").has_value();
  inv.cache = !args.hasFlag("no-cache");
  inv.probe = args.optionOr("probe", "");
  return inv;
}

/// Expands an invocation into pipeline options (shared with the serve
/// daemon so both resolve flags identically — see service/record).
PipelineOptions optionsFromInvocation(const store::CampaignInvocation& inv) {
  return service::pipelineOptionsFor(inv);
}

/// Serializes perflog lines to the byte stream a manifest hashes
/// (shared with the serve daemon — see service/record).
std::string perflogBytes(const PerfLog& perflog) {
  return service::perflogBytes(perflog);
}

/// Store state for one CLI invocation; active when --store DIR was given.
/// Owns the object store, writes the campaign manifest under
/// DIR/manifests/ and prints the cache-hit summary.
struct StoreSession {
  std::optional<store::ObjectStore> store;
  bool cache = true;
  bool coldStart = true;
  std::string manifestHash;  // set by writeManifest

  explicit StoreSession(const Args& args) : cache(!args.hasFlag("no-cache")) {
    if (auto dir = args.option("store")) {
      store.emplace(*dir);
      coldStart = store->objectCount() == 0;
    }
  }
  bool active() const { return store.has_value(); }

  void attach(PipelineOptions& options) {
    if (!active()) return;
    options.store = &*store;
    options.cacheBuilds = cache;
  }

  /// Records the finished campaign: artifacts go into the object store,
  /// the manifest lands in DIR/manifests/campaign-<hash>.json (plus a
  /// latest.json convenience copy).  The trace artifact is only pinned
  /// when this campaign started cache-cold (or caching was off): warm
  /// cache state changes the store.* spans, so those trace bytes would
  /// not be reproducible by a from-scratch replay.
  void writeManifest(const store::CampaignInvocation& inv,
                     std::span<const TestRunResult> results,
                     const PerfLog& perflog, const std::string* traceBytes) {
    if (!active()) return;
    const service::ManifestWrite written = service::writeCampaignManifest(
        *store, inv, results, perflog, traceBytes, coldStart || !cache);
    manifestHash = written.hash;
    std::cout << "manifest written to " << written.path << "\n";
  }

  /// Appends one history record per (test, target, fom) aggregate to the
  /// store's hash-chained history (see core/history).  Runs after
  /// writeManifest so records can cite the manifest hash; runs after
  /// trace serialization so history store traffic never lands in the
  /// campaign's trace bytes (the manifest hashes those).
  void appendHistory(std::span<const history::FomAggregate> foms,
                     std::span<const TestRunResult> results,
                     const SystemRegistry& systems) {
    if (!active() || foms.empty()) return;
    const service::ExecutedRecord outcome = service::summarizeCampaignOutcome(
        results, foms, manifestHash, /*perflogHash=*/"");
    // skipIfCited=false: on the CLI path repeated identical campaigns
    // are distinct observations (the serve daemon passes true).
    const service::HistoryAppendResult appended =
        service::appendCampaignHistory(*store, outcome, systems,
                                       /*skipIfCited=*/false);
    std::cout << "history: appended " << appended.records
              << " record(s) in segment " << appended.segment << "\n";
  }

  void printSummary(const Pipeline& pipeline) {
    if (!active()) return;
    if (const store::BuildCache* buildCache = pipeline.buildCache()) {
      std::cout << "store: " << buildCache->stats().hits << " cache hit(s), "
                << buildCache->stats().misses << " rebuilt, "
                << buildCache->stats().singleFlightDeduped
                << " deduped by single-flight, "
                << store->stats().evictions << " evicted - "
                << store->objectCount() << " object(s), "
                << store->totalBytes() << " bytes in " << store->dir()
                << "\n";
    } else {
      std::cout << "store: build caching disabled (--no-cache)\n";
    }
  }
};

int runBenchmark(const Args& args) {
  if (const auto error = runLengthFlagError(args)) {
    std::cerr << "run: " << *error << "\n";
    return usage();
  }
  if (const auto error = probeFlagError(args)) {
    std::cerr << "run: " << *error << "\n";
    return usage();
  }
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  const store::CampaignInvocation invocation = invocationFromArgs(args, "run");
  PipelineOptions options = optionsFromInvocation(invocation);
  TraceSession trace(args);
  trace.attach(options);
  StoreSession storeSession(args);
  storeSession.attach(options);
  Pipeline pipeline(systems, repo, options);

  PerfLog perflog(args.optionOr("perflog", ""));
  const RegressionTest test = buildTest(invocation);
  const std::string target = invocation.system;

  std::vector<TestRunResult> results;
  bool anyFailed = false;
  std::optional<infer::ControllerReport> inference;
  if (invocation.ciHalfwidth > 0.0) {
    // Adaptive run-length control (rebench::infer): the controller
    // decides the repeat count per FOM series; the campaign runs through
    // the same service::executeCampaign path as suite/serve/replay.
    const std::vector<RegressionTest> tests{test};
    const std::vector<std::string> targets{target};
    service::CampaignExecution execution = service::executeCampaign(
        pipeline, tests, targets, invocation, &perflog, nullptr, nullptr);
    results = std::move(execution.results);
    inference = std::move(execution.inference);
    for (const TestRunResult& result : results) {
      std::cout << "[" << (result.passed ? " OK " : "FAIL") << "] "
                << result.testName << " @ " << result.system << ":"
                << result.partition << " (" << result.environ << ")\n";
      if (!result.passed) {
        std::cout << "  " << result.failure.stage << " ["
                  << failureClassName(result.failure.klass)
                  << "]: " << result.failure.detail << "\n";
        anyFailed = true;
      }
    }
    printInferenceDecisions(*inference);
  } else {
    for (int repeat = 0; repeat < options.numRepeats; ++repeat) {
      const TestRunResult result =
          pipeline.runOne(test, target, &perflog, repeat);
      results.push_back(result);
      std::cout << "[" << (result.passed ? " OK " : "FAIL") << "] "
                << result.testName << " @ " << result.system << ":"
                << result.partition << " (" << result.environ << ")\n";
      if (args.hasFlag("verbose")) {
        std::cout << "  spec:   " << result.concreteSpec->shortForm() << "\n";
        std::cout << "  launch: " << result.launchCommand << "\n";
      }
      if (!result.passed) {
        std::cout << "  " << result.failure.stage << " ["
                  << failureClassName(result.failure.klass)
                  << "]: " << result.failure.detail;
        if (result.attempts > 1) {
          std::cout << " (after " << result.attempts << " attempts)";
        }
        std::cout << "\n";
        anyFailed = true;
        continue;
      }
      for (const auto& [fom, value] : result.foms) {
        std::cout << "  " << str::padRight(fom, 8) << " = "
                  << str::fixed(value, 2) << "\n";
      }
      if (!result.telemetry.empty()) {
        std::cout << "  energy   = "
                  << str::fixed(result.telemetry.energyJoules(), 0) << " J ("
                  << str::fixed(result.telemetry.meanPowerWatts(), 0)
                  << " W mean, " << result.contentionFlags.size()
                  << " contended samples)\n";
      }
    }
  }
  if (perflog.size() > 0 && args.option("perflog")) {
    std::cout << perflog.size() << " perflog entries appended to "
              << *args.option("perflog") << "\n";
  }
  const std::string traceBytes = trace.active() ? trace.serialize() : "";
  const auto fomAggregates = history::aggregateFoms(results);
  storeSession.writeManifest(invocation, results, perflog,
                             trace.active() ? &traceBytes : nullptr);
  storeSession.appendHistory(fomAggregates, results, systems);
  storeSession.printSummary(pipeline);
  trace.write(traceBytes);
  trace.writeMetrics(fomAggregates);
  return anyFailed ? 1 : 0;
}

int runSuite(const Args& args) {
  if (const auto error = runLengthFlagError(args)) {
    std::cerr << "suite: " << *error << "\n";
    return usage();
  }
  if (const auto error = probeFlagError(args)) {
    std::cerr << "suite: " << *error << "\n";
    return usage();
  }
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  const store::CampaignInvocation invocation =
      invocationFromArgs(args, "suite");
  PipelineOptions options = optionsFromInvocation(invocation);
  // Deliberately not part of the invocation/manifest: output bytes are
  // identical for every job count, so the manifest stays jobs-invariant
  // (and replay may use any worker count).
  options.jobs = std::max(1, args.intOptionOr("jobs", 1));
  TraceSession trace(args);
  trace.attach(options);
  StoreSession storeSession(args);
  storeSession.attach(options);
  Pipeline pipeline(systems, repo, options);
  PerfLog perflog(args.optionOr("perflog", ""));

  std::optional<RunJournal> journal;
  if (auto resumeDir = args.option("resume")) {
    journal.emplace(*resumeDir);
    if (journal->corruptLines() > 0) {
      std::cerr << "suite: journal had " << journal->corruptLines()
                << " corrupt line(s), ignored\n";
    }
  }

  const TestSuite suite = builtinSuite();
  const std::vector<RegressionTest> selected =
      suite.select(invocation.tag, invocation.namePattern,
                   invocation.excludePattern, options.tracer,
                   options.metrics);
  if (selected.empty()) {
    std::cerr << "suite: no tests match the selection\n";
    return 2;
  }
  const std::vector<std::string> targets{invocation.system};
  CampaignReport report;
  service::CampaignExecution execution = service::executeCampaign(
      pipeline, selected, targets, invocation, &perflog,
      journal ? &*journal : nullptr, &report);
  const std::vector<TestRunResult>& results = execution.results;
  for (const TestRunResult& result : results) {
    const char* marker = result.passed       ? " OK "
                         : result.quarantined ? "QUAR"
                                              : "FAIL";
    std::cout << "[" << marker << "] " << result.testName << " @ "
              << result.system << ":" << result.partition;
    if (!result.passed) {
      std::cout << "  (" << result.failure.stage << " ["
                << failureClassName(result.failure.klass)
                << "]: " << result.failure.detail << ")";
    }
    std::cout << "\n";
  }
  const CampaignSummary summary = summarizeCampaign(results);
  std::cout << renderCampaignSummary(summary, &report);
  if (options.jobs > 1) {
    std::cout << "executor: " << report.executed << " campaign(s) on "
              << options.jobs << " worker(s), " << report.uniqueBuilds
              << " unique build(s), " << report.dedupedBuilds
              << " deduped; simulated " << str::fixed(
                     report.simulatedSerialSeconds, 1)
              << "s serial -> " << str::fixed(
                     report.simulatedMakespanSeconds, 1)
              << "s makespan (" << report.workerLanesTouched
              << " worker lane(s) touched)\n";
  }
  if (execution.adaptive) printInferenceDecisions(execution.inference);
  const std::string traceBytes = trace.active() ? trace.serialize() : "";
  const auto fomAggregates = history::aggregateFoms(results);
  storeSession.writeManifest(invocation, results, perflog,
                             trace.active() ? &traceBytes : nullptr);
  storeSession.appendHistory(fomAggregates, results, systems);
  storeSession.printSummary(pipeline);
  trace.write(traceBytes);
  trace.writeMetrics(fomAggregates);
  return summary.failed == 0 && summary.quarantined == 0 ? 0 : 1;
}

/// `rebench replay <manifest>` — re-executes the recorded invocation
/// from scratch and diffs the regenerated artifact bytes against the
/// hashes the manifest pinned.  Exit 0 only when every artifact is
/// byte-exact; any divergence means the campaign is not reproducible
/// from its manifest (code, environment or configuration drifted).
int replay(const Args& args) {
  if (args.positionals().empty()) {
    std::cerr << "replay: missing manifest path\n";
    return 2;
  }
  const std::string manifestPath = args.positionals().front();
  const store::CampaignManifest manifest =
      store::CampaignManifest::read(manifestPath);
  const store::CampaignInvocation& invocation = manifest.invocation;
  if (invocation.mode != "run" && invocation.mode != "suite") {
    std::cerr << "replay: manifest records no replayable invocation (mode '"
              << invocation.mode << "')\n";
    return 2;
  }
  bool wantTrace = false;
  for (const store::ArtifactRecord& artifact : manifest.artifacts) {
    if (artifact.name == "trace") wantTrace = true;
  }

  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  PipelineOptions options = optionsFromInvocation(invocation);
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (wantTrace) {
    options.tracer = &tracer;
    options.metrics = &metrics;
  }
  // The original campaign only pinned its trace when it started cache-
  // cold, so a fresh throwaway store reproduces the same store.* spans;
  // replay never reuses prior state (that would let a stale artifact
  // masquerade as a reproduction).
  std::filesystem::path scratch;
  std::optional<store::ObjectStore> scratchStore;
  if (invocation.withStore && invocation.cache) {
    scratch = std::filesystem::temp_directory_path() /
              ("rebench-replay-" + manifest.contentHash());
    std::filesystem::remove_all(scratch);
    scratchStore.emplace(scratch.string());
    options.store = &*scratchStore;
  }

  Pipeline pipeline(systems, repo, options);
  PerfLog perflog;
  if (invocation.mode == "run" && invocation.ciHalfwidth <= 0.0) {
    // Fixed-repeat run mode replays through runOne so the regenerated
    // trace reproduces the original's span structure exactly.
    const RegressionTest test = buildTest(invocation);
    for (int repeat = 0; repeat < options.numRepeats; ++repeat) {
      pipeline.runOne(test, invocation.system, &perflog, repeat);
    }
  } else if (invocation.mode == "run") {
    const std::vector<RegressionTest> tests{buildTest(invocation)};
    const std::vector<std::string> targets{invocation.system};
    service::executeCampaign(pipeline, tests, targets, invocation, &perflog,
                             nullptr, nullptr);
  } else {
    const TestSuite suite = builtinSuite();
    const std::vector<RegressionTest> selected =
        suite.select(invocation.tag, invocation.namePattern,
                     invocation.excludePattern, options.tracer,
                     options.metrics);
    const std::vector<std::string> targets{invocation.system};
    service::executeCampaign(pipeline, selected, targets, invocation,
                             &perflog, nullptr, nullptr);
  }

  std::map<std::string, std::string> replayed;
  replayed["perflog"] = perflogBytes(perflog);
  if (wantTrace) replayed["trace"] = tracer.toJsonl(&metrics);
  if (!scratch.empty()) std::filesystem::remove_all(scratch);

  const store::ReplayComparison comparison =
      store::compareArtifacts(manifest, replayed);
  std::cout << "replaying " << manifestPath << " (" << invocation.mode
            << " @ " << invocation.system << ", "
            << manifest.runs.size() << " recorded run(s))\n";
  std::cout << store::renderReplayReport(comparison);
  return comparison.allExact() ? 0 : 1;
}

/// --chrome FILE on trace-report/profile: exports the catapult JSON.
/// The scheduled-lanes process group needs a profile; traces without
/// profilable spans (e.g. spec traces) export the recorded timeline only.
void writeChromeTrace(const obs::TraceFile& trace, const std::string& path,
                      const postproc::TraceProfile* profile) {
  postproc::TraceProfile empty;
  if (profile == nullptr) {
    try {
      empty = postproc::profileTrace(trace);
    } catch (const Error&) {
    }
    profile = &empty;
  }
  std::ofstream out(path);
  if (!out) throw Error("cannot write chrome trace '" + path + "'");
  out << postproc::renderChromeTrace(trace, *profile);
  // stderr, so the report on stdout stays byte-comparable across
  // invocations that name their export file differently.
  std::cerr << "chrome trace written to " << path << "\n";
}

int traceReport(const Args& args) {
  if (args.positionals().empty()) {
    std::cerr << "trace-report: missing trace file\n";
    return 2;
  }
  const obs::TraceFile trace =
      obs::readTraceFile(args.positionals().front());
  const std::vector<std::string> issues = obs::lintTrace(trace);
  for (const std::string& issue : issues) {
    std::cerr << "trace-report: warning: " << issue << "\n";
  }
  if (args.hasFlag("json")) {
    std::cout << "{\"schema\":\"rebench.trace_report/1\",\"spans\":"
              << trace.spans.size() << ",\"events\":" << trace.events.size()
              << ",\"stages\":" << stageTableJson(trace)
              << ",\"metrics\":" << metricsJson(trace) << "}\n";
  } else {
    std::cout << renderStageTable(trace);
    if (args.hasFlag("tree")) {
      std::cout << "\n" << renderTraceTree(trace);
    }
    std::cout << "\n" << renderMetricsReport(trace);
  }
  if (auto chromePath = args.option("chrome")) {
    writeChromeTrace(trace, *chromePath, nullptr);
  }
  return 0;
}

/// `rebench profile` — the trace profiling engine.  Plain mode
/// reconstructs the canonical lane schedule of a campaign trace and
/// prints the Gantt/utilization view plus the critical path; `--diff A B`
/// aligns two traces by span name-path instead and exits 1 when the
/// candidate regressed beyond --threshold.
int profileCommand(const Args& args) {
  if (auto baseline = args.option("diff")) {
    // Parsed as `--diff A` (option) + `B` (positional).
    if (args.positionals().empty()) {
      std::cerr << "profile: --diff needs two traces "
                   "(rebench profile --diff A B)\n";
      return 2;
    }
    const obs::TraceFile a = obs::readTraceFile(*baseline);
    const obs::TraceFile b = obs::readTraceFile(args.positionals().front());
    const double threshold = std::stod(args.optionOr("threshold", "0.05"));
    const postproc::TraceDiff diff = postproc::diffTraces(a, b, threshold);
    if (args.hasFlag("json")) {
      std::cout << "{\"schema\":\"rebench.profile_diff/1\",\"diff\":"
                << postproc::diffJson(diff) << "}\n";
    } else {
      std::cout << postproc::renderDiff(diff);
    }
    return diff.regressions() == 0 ? 0 : 1;
  }

  if (args.positionals().empty()) {
    std::cerr << "profile: missing trace file\n";
    return 2;
  }
  const obs::TraceFile trace =
      obs::readTraceFile(args.positionals().front());
  for (const std::string& issue : obs::lintTrace(trace)) {
    std::cerr << "profile: warning: " << issue << "\n";
  }
  const postproc::TraceProfile profile = postproc::profileTrace(trace);
  const postproc::CriticalPathReport critical =
      postproc::extractCriticalPath(trace, profile);
  if (args.hasFlag("json")) {
    std::cout << "{\"schema\":\"rebench.profile/1\",\"profile\":"
              << postproc::profileJson(profile)
              << ",\"critical_path\":" << postproc::criticalPathJson(critical)
              << ",\"stages\":" << stageTableJson(trace)
              << ",\"metrics\":" << metricsJson(trace) << "}\n";
  } else {
    std::cout << postproc::renderProfile(profile) << "\n"
              << postproc::renderCriticalPath(critical);
  }
  if (auto chromePath = args.option("chrome")) {
    writeChromeTrace(trace, *chromePath, &profile);
  }
  return 0;
}

int report(const Args& args) {
  const auto path = args.option("perflog");
  if (!path) {
    std::cerr << "report: --perflog required\n";
    return 2;
  }
  if (const auto error = frameCacheFlagError(args)) {
    std::cerr << "report: " << *error << "\n";
    return 2;
  }
  DataFrame frame;
  if (const auto cacheDir = args.option("frame-cache")) {
    // Columnar cache path: same bytes out, but repeat reads of a large
    // unchanged perflog skip the parse entirely (content-hash keyed,
    // verified read — corruption degrades to a re-parse).
    store::ObjectStore cache(*cacheDir);
    frame = analysisFrameFromTable(loadOrConvertPerflog(cache, *path).table);
  } else {
    frame = perflogToDataFrame(PerfLog::readFile(*path));
  }
  if (auto fom = args.option("fom")) {
    frame = frame.filterEquals("fom", *fom);
  }
  if (frame.empty()) {
    std::cout << "(no matching entries)\n";
    return 0;
  }
  AsciiTable table("perflog report:");
  table.setHeader({"system", "partition", "test", "fom", "value", "unit",
                   "result"});
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    table.addRow({frame.strings("system")[i], frame.strings("partition")[i],
                  frame.strings("test")[i], frame.strings("fom")[i],
                  str::fixed(frame.numeric("value")[i], 2),
                  frame.strings("unit")[i], frame.strings("result")[i]});
  }
  std::cout << table.render();

  if (args.hasFlag("stats")) {
    // H&B-style reporting: per (system, test, fom) summary over repeats.
    const std::array<std::string, 3> keys{"system", "test", "fom"};
    std::cout << "\nstatistics per series (Hoefler-Belli reporting):\n";
    std::map<std::string, std::vector<double>> series;
    for (std::size_t i = 0; i < frame.rowCount(); ++i) {
      // Summary rows are already statistics; folding them into the
      // per-repeat series would double-count the mean.
      if (frame.strings("result")[i] == "summary") continue;
      const std::string key = frame.strings("system")[i] + "/" +
                              frame.strings("test")[i] + "/" +
                              frame.strings("fom")[i];
      series[key].push_back(frame.numeric("value")[i]);
    }
    for (const auto& [key, values] : series) {
      const SummaryStats stats = summarize(values);
      std::cout << "  " << key << ": " << renderStats(stats);
      if (!isReportable(stats)) std::cout << "  [NOT REPORTABLE]";
      std::cout << "\n";
    }
    (void)keys;
  }

  if (args.hasFlag("plot")) {
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t i = 0; i < frame.rowCount(); ++i) {
      if (frame.strings("result")[i] == "summary") continue;
      labels.push_back(frame.strings("system")[i] + "/" +
                       frame.strings("fom")[i]);
      values.push_back(frame.numeric("value")[i]);
    }
    std::cout << "\n" << renderBarChart(labels, values, {.width = 40});
  }
  return 0;
}

int compare(const Args& args) {
  const auto before = args.option("before");
  const auto after = args.option("after");
  if (!before || !after) {
    std::cerr << "compare: --before and --after perflogs required\n";
    return 2;
  }
  if (const auto error = frameCacheFlagError(args)) {
    std::cerr << "compare: " << *error << "\n";
    return 2;
  }
  const double threshold =
      std::stod(args.optionOr("threshold", "0.05"));

  std::optional<store::ObjectStore> frameCache;
  if (const auto cacheDir = args.option("frame-cache")) {
    frameCache.emplace(*cacheDir);
  }
  auto collect = [&frameCache](const std::string& path) {
    const std::vector<PerfLogEntry> entries =
        frameCache
            ? tableToPerflogEntries(loadOrConvertPerflog(*frameCache, path).table)
            : PerfLog::readFile(path);
    std::map<std::string, std::vector<double>> series;
    for (const PerfLogEntry& entry : entries) {
      // Adaptive campaigns append result=summary aggregate rows; only
      // the raw per-repeat observations feed the median comparison.
      if (entry.result == "error" || entry.result == "summary") continue;
      series[entry.system + ":" + entry.partition + "/" + entry.testName +
             "/" + entry.fomName]
          .push_back(entry.value);
    }
    return series;
  };
  const auto beforeSeries = collect(*before);
  const auto afterSeries = collect(*after);

  AsciiTable table("performance comparison (" + *before + " -> " + *after +
                   "):");
  table.setHeader({"series", "before (median)", "after (median)", "delta",
                   "verdict"});
  int regressions = 0;
  for (const auto& [key, beforeValues] : beforeSeries) {
    auto it = afterSeries.find(key);
    if (it == afterSeries.end()) {
      table.addRow({key, str::fixed(summarize(beforeValues).median, 2),
                    "(missing)", "-", "DROPPED"});
      ++regressions;
      continue;
    }
    const double b = summarize(beforeValues).median;
    const double a = summarize(it->second).median;
    const double delta = b != 0.0 ? (a - b) / b : 0.0;
    std::string verdict = "ok";
    if (delta < -threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (delta > threshold) {
      verdict = "improved";
    }
    table.addRow({key, str::fixed(b, 2), str::fixed(a, 2),
                  str::fixed(delta * 100.0, 1) + "%", verdict});
  }
  std::cout << table.render();
  return regressions == 0 ? 0 : 1;
}

/// Store-backed `rebench history`: trend view and regression gate over
/// the hash-chained history the campaigns under --store appended.
int storeHistory(const Args& args, const std::string& storeDir) {
  store::ObjectStore store(storeDir);
  history::HistoryIndex index(store);
  const std::string test =
      args.positionals().empty() ? "" : args.positionals()[0];
  const std::string target =
      args.positionals().size() < 2 ? "" : args.positionals()[1];
  const std::vector<history::HistoryRecord> records =
      index.query(test, target);

  // `--check` is a flag when trailing but swallows a following bare
  // token as its value; accept both spellings.
  if (args.hasFlag("check") || args.option("check").has_value()) {
    if (records.empty()) {
      std::cerr << "history: no matching records to gate\n";
      return 2;
    }
    history::GateOptions gate;
    gate.window = static_cast<std::size_t>(
        std::max(1, args.intOptionOr("window", 5)));
    gate.threshold = args.doubleOptionOr("threshold", 0.05);
    const std::vector<history::GateResult> verdicts =
        history::checkRegression(records, gate);
    int regressions = 0;
    for (const history::GateResult& verdict : verdicts) {
      if (verdict.regression) ++regressions;
    }
    if (args.hasFlag("json")) {
      std::cout << "{\"schema\":\"rebench.history_gate/1\",\"window\":"
                << gate.window << ",\"threshold\":"
                << str::fixed(gate.threshold, 6)
                << ",\"regressions\":" << regressions << ",\"series\":[";
      bool first = true;
      for (const history::GateResult& verdict : verdicts) {
        if (!first) std::cout << ",";
        first = false;
        std::cout << "{\"series\":" << obs::json::quote(verdict.series)
                  << ",\"insufficient\":"
                  << (verdict.insufficient ? "true" : "false")
                  << ",\"regression\":"
                  << (verdict.regression ? "true" : "false")
                  << ",\"latest\":" << obs::formatMetricValue(verdict.latest)
                  << ",\"baseline\":"
                  << obs::formatMetricValue(verdict.baseline)
                  << ",\"delta\":" << obs::formatMetricValue(verdict.delta)
                  << ",\"baseline_ci\":"
                  << obs::formatMetricValue(verdict.baselineCi)
                  << ",\"latest_ci\":"
                  << obs::formatMetricValue(verdict.latestCi)
                  << ",\"latest_ess\":"
                  << obs::formatMetricValue(verdict.latestEss)
                  << ",\"significant\":"
                  << (verdict.significant ? "true" : "false")
                  << ",\"changepoint\":"
                  << (verdict.changepoint ? "true" : "false")
                  << ",\"changepoint_index\":" << verdict.changepointIndex
                  << ",\"justification\":"
                  << obs::json::quote(verdict.justification) << "}";
      }
      std::cout << "]}\n";
      return regressions > 0 ? 1 : 0;
    }
    for (const history::GateResult& verdict : verdicts) {
      if (verdict.insufficient) {
        std::cout << "[ -- ] " << verdict.series << ": "
                  << verdict.justification << "\n";
        continue;
      }
      std::cout << "[" << (verdict.regression ? "FAIL" : " OK ") << "] "
                << verdict.series << ": " << verdict.justification << "\n";
    }
    if (regressions > 0) {
      std::cout << regressions << " regression(s) detected\n";
      return 1;
    }
    return 0;
  }

  history::RenderOptions options;
  options.json = args.hasFlag("json");
  options.window = static_cast<std::size_t>(
      std::max(1, args.intOptionOr("window", 5)));
  options.changepoint.relThreshold = args.doubleOptionOr("threshold", 0.05);
  std::cout << history::renderHistory(records, options);
  return 0;
}

int history(const Args& args) {
  if (auto storeDir = args.option("store")) {
    return storeHistory(args, *storeDir);
  }
  const auto path = args.option("perflog");
  if (!path) {
    std::cerr << "history: --store DIR or --perflog F required\n";
    return 2;
  }
  if (const auto error = frameCacheFlagError(args)) {
    std::cerr << "history: " << *error << "\n";
    return 2;
  }
  std::vector<PerfLogEntry> all;
  if (const auto cacheDir = args.option("frame-cache")) {
    store::ObjectStore cache(*cacheDir);
    all = tableToPerflogEntries(loadOrConvertPerflog(cache, *path).table);
  } else {
    all = PerfLog::readFile(*path);
  }
  PerfHistory perfHistory;
  std::vector<PerfLogEntry> entries;
  for (PerfLogEntry& entry : all) {
    // result=summary aggregate rows are derived statistics, not
    // longitudinal observations.
    if (entry.result != "summary") entries.push_back(std::move(entry));
  }
  perfHistory.addAll(entries);

  DetectorOptions options;
  options.window = args.intOptionOr("window", 8);
  options.sigmas = std::stod(args.optionOr("sigmas", "3.0"));
  const auto events =
      args.hasFlag("detect") ? perfHistory.detect(options)
                             : std::vector<RegressionEvent>{};

  for (const SeriesKey& key : perfHistory.keys()) {
    const auto& points = perfHistory.series(key);
    std::cout << key.toString() << ": " << points.size() << " points\n";
    if (points.size() >= 2) {
      std::cout << renderHistoryPlot(points, events, "") << "\n";
    }
  }
  for (const RegressionEvent& event : events) {
    std::cout << "REGRESSION " << event.detail << "\n";
  }
  return events.empty() ? 0 : 1;
}

/// Maps a queued invocation to its tests — injected into the service
/// layer so core stays free of benchmark dependencies.
std::vector<RegressionTest> resolveSubmissionTests(
    const store::CampaignInvocation& inv) {
  if (inv.mode == "run") return {buildTest(inv)};
  const TestSuite suite = builtinSuite();
  return suite.select(inv.tag, inv.namePattern, inv.excludePattern, nullptr,
                      nullptr);
}

/// `rebench submit` — drops one campaign invocation into a serve queue
/// (tmp + atomic rename; idempotent by content hash).
int submitCommand(const Args& args) {
  if (const auto error = runLengthFlagError(args)) {
    std::cerr << "submit: " << *error << "\n";
    return usage();
  }
  if (const auto error = probeFlagError(args)) {
    std::cerr << "submit: " << *error << "\n";
    return usage();
  }
  const auto queueDir = args.option("queue");
  if (!queueDir) {
    std::cerr << "submit: --queue DIR required\n";
    return 2;
  }
  const std::string mode = args.option("benchmark") ? "run" : "suite";
  store::CampaignInvocation inv = invocationFromArgs(args, mode);
  // Submissions always execute against the daemon's store; only build
  // reuse stays configurable.
  inv.withStore = true;
  inv.cache = !args.hasFlag("no-cache");
  const service::Submission sub = service::enqueueSubmission(*queueDir, inv);
  std::cout << "submitted " << sub.id << " (" << mode << " @ " << inv.system
            << ") -> " << sub.path << "\n";
  return 0;
}

/// `rebench serve` — the crash-safe continuous-benchmarking daemon (see
/// service/service.hpp and DESIGN.md §14).
int serveCommand(const Args& args) {
  const auto queueDir = args.option("queue");
  if (queueDir && args.hasFlag("request-drain")) {
    service::requestDrain(*queueDir);
    std::cout << "serve: drain requested for " << *queueDir << "\n";
    return 0;
  }
  if (queueDir && args.hasFlag("clear-drain")) {
    service::clearDrainRequest(*queueDir);
    std::cout << "serve: drain request cleared for " << *queueDir << "\n";
    return 0;
  }
  const auto storeDir = args.option("store");
  if (!queueDir || !storeDir) {
    std::cerr << "serve: --queue DIR and --store DIR required\n";
    return 2;
  }
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  TraceSession trace(args);

  service::ServeOptions options;
  options.queueDir = *queueDir;
  options.storeDir = *storeDir;
  options.once = args.hasFlag("once");
  options.jobs = std::max(1, args.intOptionOr("jobs", 1));
  options.quarantineAfter =
      std::max(1, args.intOptionOr("quarantine-after", 3));
  options.stageTimeout = args.doubleOptionOr("stage-timeout", -1.0);
  options.submissionTimeout =
      args.doubleOptionOr("submission-timeout", -1.0);
  options.crashAfter = args.optionOr("crash-after", "");
  if (args.hasFlag("listen")) {
    std::cerr << "serve: --listen expects HOST:PORT (port 0 = ephemeral)\n";
    return 2;
  }
  options.listen = args.optionOr("listen", "");
  if (trace.active()) options.tracer = &trace.tracer;
  if (trace.active() || trace.metricsOut.has_value()) {
    options.metrics = &trace.metrics;
  }
  options.log = &std::cout;

  // SIGTERM/SIGINT = graceful drain: finish the submission in flight,
  // snapshot health, exit.
  std::signal(SIGTERM, [](int) { service::Service::requestShutdown(); });
  std::signal(SIGINT, [](int) { service::Service::requestShutdown(); });
  service::Service daemon(systems, repo, std::move(options),
                          resolveSubmissionTests);
  const service::ServeReport report = daemon.run();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);

  if (report.crashed) {
    // The crash-after test hook: behave like a killed process — no
    // summary, no trace, distinctive exit code for the harness.
    std::cout << "serve: crashed (crash-after hook)\n";
    return 3;
  }
  const std::string traceBytes = trace.active() ? trace.serialize() : "";
  trace.write(traceBytes);
  trace.writeMetrics({});
  if (!report.endpointAddress.empty()) {
    std::cout << "serve: endpoint " << report.endpointAddress << " answered "
              << report.endpointRequests << " request(s)\n";
  }
  std::cout << "serve: " << report.processed
            << " submission(s) processed - " << report.cached << " cached, "
            << report.executed << " executed (" << report.clean << " clean, "
            << report.regressed << " regressed), " << report.failed
            << " failed, " << report.quarantined << " quarantined, "
            << report.degraded << " degraded\n";
  if (report.drained) {
    std::cout << "serve: drained, " << report.queueDepth
              << " submission(s) remaining in queue\n";
  }
  return 0;
}

/// QUEUE/endpoint.addr, written by a daemon with --listen ("" when no
/// live endpoint is advertised).
std::string readEndpointAddress(const std::string& queueDir) {
  std::ifstream in(std::filesystem::path(queueDir) / "endpoint.addr");
  if (!in) return "";
  std::string addr;
  std::getline(in, addr);
  return std::string(str::trim(addr));
}

/// Prints the scalar fields of a health object (live /health or the
/// health.json snapshot) in a fixed order, skipping absent keys.
void printHealthFields(const obs::json::Value& health) {
  static constexpr std::array<std::string_view, 17> kKeys = {
      "seq",         "uptime_seconds", "processed",
      "cached",      "executed",       "clean",
      "regressed",   "failed",         "quarantined",
      "degraded",    "malformed",      "watchdog_fires",
      "queue_depth", "runcache_hits",  "runcache_misses",
      "watchdog_arms", "verdicts"};
  for (const std::string_view key : kKeys) {
    const std::string name(key);
    if (!health.contains(name)) continue;
    const double value = health.numberOr(name, 0.0);
    std::cout << "  " << str::padRight(name, 16) << " ";
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::cout << static_cast<long long>(value) << "\n";
    } else {
      std::cout << str::fixed(value, 3) << "\n";
    }
  }
  for (const std::string_view key :
       {std::string_view("inflight_submission"),
        std::string_view("inflight_stage")}) {
    const std::string name(key);
    const std::string value = health.stringOr(name, "");
    if (!value.empty()) {
      std::cout << "  " << str::padRight(name, 16) << " " << value << "\n";
    }
  }
}

/// Summarizes the newest QUEUE/flightrec-<seq>.jsonl: event/drop counts
/// from the meta line plus the last recorded event, which a post-mortem
/// reads next to the journal's claimed state.
void printFlightRecordSummary(const std::string& queueDir) {
  namespace fs = std::filesystem;
  std::string newest;
  long long newestSeq = -1;
  for (const auto& entry : fs::directory_iterator(queueDir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("flightrec-", 0) != 0 ||
        name.find(".jsonl") == std::string::npos) {
      continue;
    }
    const std::string digits =
        name.substr(10, name.size() - 10 - std::string(".jsonl").size());
    long long seq = -1;
    try {
      seq = std::stoll(digits);
    } catch (...) {
      continue;
    }
    if (seq > newestSeq) {
      newestSeq = seq;
      newest = entry.path().string();
    }
  }
  if (newest.empty()) return;
  std::ifstream in(newest);
  std::string line;
  std::string meta;
  std::string last;
  while (std::getline(in, line)) {
    if (str::trim(line).empty()) continue;
    if (meta.empty()) {
      meta = line;
    } else {
      last = line;
    }
  }
  if (meta.empty()) return;
  try {
    const obs::json::Value header = obs::json::parse(meta);
    std::cout << "flight record: "
              << fs::path(newest).filename().string() << " ("
              << static_cast<long long>(header.numberOr("events", 0))
              << " event(s), "
              << static_cast<long long>(header.numberOr("dropped", 0))
              << " dropped)\n";
    if (!last.empty()) {
      const obs::json::Value event = obs::json::parse(last);
      std::cout << "  last event: seq "
                << static_cast<long long>(event.numberOr("seq", 0)) << " "
                << event.stringOr("kind", "?") << "/"
                << event.stringOr("stage", "?");
      const std::string submission = event.stringOr("submission", "");
      if (!submission.empty()) std::cout << " (" << submission << ")";
      std::cout << "\n";
    }
  } catch (const Error& e) {
    std::cout << "flight record: " << newest << " unparseable: " << e.what()
              << "\n";
  }
}

/// `rebench status` — live TTY view of a serve queue: health via the
/// --listen endpoint when one is advertised (QUEUE/endpoint.addr),
/// falling back to the health.json snapshot; plus the newest flight
/// record.  --fetch PATH prints one endpoint response verbatim (the
/// in-test HTTP client); --follow streams /verdicts as they are filed.
int statusCommand(const Args& args) {
  const auto queueDir = args.option("queue");
  if (!queueDir) {
    std::cerr << "status: --queue DIR required\n";
    return 2;
  }
  const std::string addr = readEndpointAddress(*queueDir);

  if (const auto fetch = args.option("fetch")) {
    if (addr.empty()) {
      std::cerr << "status: no live endpoint (" << *queueDir
                << "/endpoint.addr missing)\n";
      return 2;
    }
    std::cout << telemetry::httpGet(addr, *fetch);
    return 0;
  }

  if (args.hasFlag("follow")) {
    if (addr.empty()) {
      std::cerr << "status: --follow needs a live endpoint (" << *queueDir
                << "/endpoint.addr missing)\n";
      return 2;
    }
    std::uint64_t since = 0;
    while (true) {
      std::string body;
      try {
        body = telemetry::httpGet(
            addr, "/verdicts?since=" + std::to_string(since));
      } catch (const Error&) {
        std::cout << "status: endpoint gone (daemon exited)\n";
        return 0;
      }
      std::istringstream lines(body);
      std::string line;
      while (std::getline(lines, line)) {
        if (str::trim(line).empty()) continue;
        std::cout << line << "\n" << std::flush;
        try {
          const obs::json::Value verdict = obs::json::parse(line);
          since = std::max(
              since, static_cast<std::uint64_t>(verdict.numberOr("seq", 0)));
        } catch (const Error&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }

  bool printed = false;
  if (!addr.empty()) {
    try {
      const std::string body = telemetry::httpGet(addr, "/health");
      std::cout << "status: live endpoint at " << addr << "\n";
      printHealthFields(obs::json::parse(str::trim(body)));
      printed = true;
    } catch (const Error& e) {
      std::cout << "status: stale endpoint.addr (" << addr
                << " unreachable: " << e.what() << ")\n";
    }
  }
  if (!printed) {
    const std::string healthPath =
        (std::filesystem::path(*queueDir) / "health.json").string();
    std::ifstream in(healthPath);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      std::cout << "status: snapshot from " << healthPath
                << " (no live endpoint)\n";
      printHealthFields(obs::json::parse(str::trim(text.str())));
      printed = true;
    }
  }
  if (!printed) {
    std::cout << "status: no health information in " << *queueDir
              << " (daemon never ran?)\n";
  }
  printFlightRecordSummary(*queueDir);
  return printed ? 0 : 1;
}

int dispatch(const Args& args) {
  if (args.subcommand() == "list-systems") return listSystems();
  if (args.subcommand() == "list-packages") return listPackages();
  if (args.subcommand() == "spec") return showSpec(args);
  if (args.subcommand() == "env") return showEnv(args);
  if (args.subcommand() == "audit") return audit(args);
  if (args.subcommand() == "run") return runBenchmark(args);
  if (args.subcommand() == "suite") return runSuite(args);
  if (args.subcommand() == "replay") return replay(args);
  if (args.subcommand() == "report") return report(args);
  if (args.subcommand() == "trace-report") return traceReport(args);
  if (args.subcommand() == "profile") return profileCommand(args);
  if (args.subcommand() == "history") return history(args);
  if (args.subcommand() == "compare") return compare(args);
  if (args.subcommand() == "submit") return submitCommand(args);
  if (args.subcommand() == "serve") return serveCommand(args);
  if (args.subcommand() == "status") return statusCommand(args);
  return usage();
}

}  // namespace
}  // namespace rebench::cli

int main(int argc, char** argv) {
  try {
    const rebench::cli::Args args = rebench::cli::Args::parse(argc, argv);
    return rebench::cli::dispatch(args);
  } catch (const rebench::Error& e) {
    std::cerr << "rebench: " << e.what() << "\n";
    return 1;
  }
}
