#include "cli/args.hpp"

#include <algorithm>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace rebench::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  int i = 1;
  while (i < argc) {
    const std::string token = argv[i];
    if (token == "-S") {
      if (i + 1 >= argc) throw ParseError("-S requires key=value");
      const std::string setting = argv[++i];
      const std::size_t eq = setting.find('=');
      if (eq == std::string::npos) {
        throw ParseError("-S expects key=value, got '" + setting + "'");
      }
      args.settings_.emplace_back(setting.substr(0, eq),
                                  setting.substr(eq + 1));
    } else if (str::startsWith(token, "--")) {
      std::string name = token.substr(2);
      if (name.empty()) throw ParseError("bare '--' is not an option");
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        args.options_[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options_[name] = argv[++i];
      } else {
        args.flags_.push_back(name);
      }
    } else if (args.subcommand_.empty()) {
      args.subcommand_ = token;
    } else {
      args.positionals_.push_back(token);
    }
    ++i;
  }
  return args;
}

bool Args::hasFlag(std::string_view name) const {
  return std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

std::optional<std::string> Args::option(std::string_view name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Args::optionOr(std::string_view name,
                           std::string_view fallback) const {
  auto value = option(name);
  return value ? *value : std::string(fallback);
}

int Args::intOptionOr(std::string_view name, int fallback) const {
  auto value = option(name);
  if (!value) return fallback;
  try {
    return std::stoi(*value);
  } catch (const std::exception&) {
    throw ParseError("option --" + std::string(name) +
                     " expects an integer, got '" + *value + "'");
  }
}

double Args::doubleOptionOr(std::string_view name, double fallback) const {
  auto value = option(name);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw ParseError("option --" + std::string(name) +
                     " expects a number, got '" + *value + "'");
  }
}

}  // namespace rebench::cli
