// Minimal command-line argument parser for the rebench CLI: subcommand +
// --flag / --key value / --key=value / -S key=value options, mirroring the
// ReFrame invocation style the paper's appendix documents.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rebench::cli {

class Args {
 public:
  /// Parses argv[1..]; the first non-option token is the subcommand and
  /// later non-option tokens are positionals.  Throws ParseError on
  /// malformed input (e.g. a valueless --key at end of line is a flag).
  static Args parse(int argc, const char* const* argv);

  const std::string& subcommand() const { return subcommand_; }
  const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  bool hasFlag(std::string_view name) const;
  std::optional<std::string> option(std::string_view name) const;
  std::string optionOr(std::string_view name,
                       std::string_view fallback) const;
  int intOptionOr(std::string_view name, int fallback) const;
  double doubleOptionOr(std::string_view name, double fallback) const;

  /// All -S key=value settings, in order (ReFrame's -S).
  const std::vector<std::pair<std::string, std::string>>& settings() const {
    return settings_;
  }

 private:
  std::string subcommand_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> flags_;
  std::vector<std::pair<std::string, std::string>> settings_;
};

}  // namespace rebench::cli
