#include "hpgmg/fv.hpp"

#include <cmath>

#include "core/util/error.hpp"

namespace rebench::hpgmg {

Level::Level(int edge) : n(edge), h(1.0 / edge) {
  REBENCH_REQUIRE(edge >= 2);
  u.assign(cells(), 0.0);
  f.assign(cells(), 0.0);
  r.assign(cells(), 0.0);
  // beta == 1 everywhere (documented simplification); the arrays are real
  // and streamed so the variable-coefficient memory footprint is retained.
  bx.assign(cells(), 1.0);
  by.assign(cells(), 1.0);
  bz.assign(cells(), 1.0);
}

namespace {

/// Applies the 7-point FV stencil at one cell given a value accessor.
/// Returns (1/h^2) * sum_faces beta_face * (u_c - u_nbr), with the
/// Dirichlet ghost u_ghost = -u_c at domain faces.
template <typename U>
double applyAt(const Level& lvl, const U& u, int i, int j, int k) {
  const int n = lvl.n;
  const std::size_t idx = lvl.index(i, j, k);
  const double uc = u[idx];
  double sum = 0.0;

  // x-low face
  sum += lvl.bx[idx] * (uc - (i > 0 ? u[idx - 1] : -uc));
  // x-high face: coefficient stored on the neighbour's low face.
  sum += (i < n - 1 ? lvl.bx[idx + 1] * (uc - u[idx + 1]) : 1.0 * (2.0 * uc));
  // y faces
  sum += lvl.by[idx] * (uc - (j > 0 ? u[idx - n] : -uc));
  sum += (j < n - 1 ? lvl.by[idx + n] * (uc - u[idx + n])
                    : 1.0 * (2.0 * uc));
  // z faces
  const std::size_t P = static_cast<std::size_t>(n) * n;
  sum += lvl.bz[idx] * (uc - (k > 0 ? u[idx - P] : -uc));
  sum += (k < n - 1 ? lvl.bz[idx + P] * (uc - u[idx + P])
                    : 1.0 * (2.0 * uc));
  return sum / (lvl.h * lvl.h);
}

}  // namespace

double operatorDiagonal(const Level& lvl, int i, int j, int k) {
  const int n = lvl.n;
  const std::size_t idx = lvl.index(i, j, k);
  const std::size_t P = static_cast<std::size_t>(n) * n;
  double diag = 0.0;
  diag += lvl.bx[idx] * (i > 0 ? 1.0 : 2.0);
  diag += (i < n - 1 ? lvl.bx[idx + 1] : 2.0);
  diag += lvl.by[idx] * (j > 0 ? 1.0 : 2.0);
  diag += (j < n - 1 ? lvl.by[idx + n] : 2.0);
  diag += lvl.bz[idx] * (k > 0 ? 1.0 : 2.0);
  diag += (k < n - 1 ? lvl.bz[idx + P] : 2.0);
  return diag / (lvl.h * lvl.h);
}

namespace {

/// Runs fn(k) for every z-plane, across the pool when one is given.
template <typename Fn>
void forEachPlane(const Level& lvl, ThreadPool* pool, Fn&& fn) {
  if (pool == nullptr) {
    for (int k = 0; k < lvl.n; ++k) fn(k);
    return;
  }
  parallelForBlocked(*pool, 0, static_cast<std::size_t>(lvl.n),
                     [&fn](std::size_t lo, std::size_t hi) {
                       for (std::size_t k = lo; k < hi; ++k) {
                         fn(static_cast<int>(k));
                       }
                     });
}

}  // namespace

void applyOperator(const Level& lvl, std::span<const double> u,
                   std::span<double> out, WorkCounters& counters,
                   ThreadPool* pool) {
  REBENCH_REQUIRE(u.size() == lvl.cells() && out.size() == lvl.cells());
  forEachPlane(lvl, pool, [&](int k) {
    for (int j = 0; j < lvl.n; ++j) {
      for (int i = 0; i < lvl.n; ++i) {
        out[lvl.index(i, j, k)] = applyAt(lvl, u, i, j, k);
      }
    }
  });
  const double cells = static_cast<double>(lvl.cells());
  counters.flops += 16.0 * cells;
  counters.bytes += 40.0 * cells;  // u + 3 beta streams + out
  ++counters.kernelLaunches;
}

double computeResidual(Level& lvl, WorkCounters& counters,
                       ThreadPool* pool) {
  auto planeResidual = [&lvl](int k) {
    double partial = 0.0;
    for (int j = 0; j < lvl.n; ++j) {
      for (int i = 0; i < lvl.n; ++i) {
        const std::size_t idx = lvl.index(i, j, k);
        const double res = lvl.f[idx] - applyAt(lvl, lvl.u, i, j, k);
        lvl.r[idx] = res;
        partial += res * res;
      }
    }
    return partial;
  };
  double norm2 = 0.0;
  if (pool == nullptr) {
    for (int k = 0; k < lvl.n; ++k) norm2 += planeResidual(k);
  } else {
    norm2 = parallelReduceSumBlocked(
        *pool, 0, static_cast<std::size_t>(lvl.n),
        [&planeResidual](std::size_t lo, std::size_t hi) {
          double partial = 0.0;
          for (std::size_t k = lo; k < hi; ++k) {
            partial += planeResidual(static_cast<int>(k));
          }
          return partial;
        });
  }
  const double cells = static_cast<double>(lvl.cells());
  counters.flops += 19.0 * cells;
  counters.bytes += 48.0 * cells;  // u, f, 3 beta, r
  ++counters.kernelLaunches;
  return std::sqrt(norm2);
}

void smoothGSRB(Level& lvl, WorkCounters& counters, ThreadPool* pool) {
  // Same-colour cells are independent (their stencils only touch the
  // other colour), so each colour half-sweep threads over planes safely.
  for (int colour = 0; colour < 2; ++colour) {
    forEachPlane(lvl, pool, [&lvl, colour](int k) {
      for (int j = 0; j < lvl.n; ++j) {
        for (int i = (j + k + colour) % 2; i < lvl.n; i += 2) {
          const std::size_t idx = lvl.index(i, j, k);
          const double diag = operatorDiagonal(lvl, i, j, k);
          // A u = diag*u_c - offdiag_terms  =>  u_c = (f + offdiag)/diag,
          // where offdiag = diag*u_c - A u evaluated at the current state.
          const double Au = applyAt(lvl, lvl.u, i, j, k);
          lvl.u[idx] += (lvl.f[idx] - Au) / diag;
        }
      }
    });
  }
  const double cells = static_cast<double>(lvl.cells());
  counters.flops += 2.0 * 18.0 * cells;
  counters.bytes += 2.0 * 48.0 * cells;
  counters.smootherSweeps += 1;
  counters.kernelLaunches += 2;
}

void restrictResidual(const Level& fine, Level& coarse,
                      WorkCounters& counters) {
  REBENCH_REQUIRE(coarse.n * 2 == fine.n);
  for (int K = 0; K < coarse.n; ++K) {
    for (int J = 0; J < coarse.n; ++J) {
      for (int I = 0; I < coarse.n; ++I) {
        double sum = 0.0;
        for (int dk = 0; dk < 2; ++dk) {
          for (int dj = 0; dj < 2; ++dj) {
            for (int di = 0; di < 2; ++di) {
              sum += fine.r[fine.index(2 * I + di, 2 * J + dj, 2 * K + dk)];
            }
          }
        }
        coarse.f[coarse.index(I, J, K)] = sum / 8.0;
      }
    }
  }
  counters.flops += 8.0 * static_cast<double>(coarse.cells());
  counters.bytes += 8.0 * static_cast<double>(fine.cells()) +
                    8.0 * static_cast<double>(coarse.cells());
  ++counters.kernelLaunches;
}

void prolongCorrection(const Level& coarse, Level& fine,
                       WorkCounters& counters) {
  REBENCH_REQUIRE(coarse.n * 2 == fine.n);
  for (int k = 0; k < fine.n; ++k) {
    for (int j = 0; j < fine.n; ++j) {
      for (int i = 0; i < fine.n; ++i) {
        fine.u[fine.index(i, j, k)] +=
            coarse.u[coarse.index(i / 2, j / 2, k / 2)];
      }
    }
  }
  counters.flops += static_cast<double>(fine.cells());
  counters.bytes += 16.0 * static_cast<double>(fine.cells());
  ++counters.kernelLaunches;
}

namespace {

/// Central slope of coarse u along one axis with Dirichlet ghosts.
double slope(const Level& c, int i, int j, int k, int axis) {
  auto value = [&c](int ii, int jj, int kk) {
    // Ghost cells mirror with sign flip (homogeneous Dirichlet).
    double sign = 1.0;
    if (ii < 0) { ii = 0; sign = -1.0; }
    if (ii >= c.n) { ii = c.n - 1; sign = -1.0; }
    if (jj < 0) { jj = 0; sign = -1.0; }
    if (jj >= c.n) { jj = c.n - 1; sign = -1.0; }
    if (kk < 0) { kk = 0; sign = -1.0; }
    if (kk >= c.n) { kk = c.n - 1; sign = -1.0; }
    return sign * c.u[c.index(ii, jj, kk)];
  };
  const int di = axis == 0, dj = axis == 1, dk = axis == 2;
  return 0.5 * (value(i + di, j + dj, k + dk) -
                value(i - di, j - dj, k - dk));
}

}  // namespace

void interpolateSolution(const Level& coarse, Level& fine,
                         WorkCounters& counters) {
  REBENCH_REQUIRE(coarse.n * 2 == fine.n);
  for (int K = 0; K < coarse.n; ++K) {
    for (int J = 0; J < coarse.n; ++J) {
      for (int I = 0; I < coarse.n; ++I) {
        const double base = coarse.u[coarse.index(I, J, K)];
        const double sx = slope(coarse, I, J, K, 0);
        const double sy = slope(coarse, I, J, K, 1);
        const double sz = slope(coarse, I, J, K, 2);
        for (int dk = 0; dk < 2; ++dk) {
          for (int dj = 0; dj < 2; ++dj) {
            for (int di = 0; di < 2; ++di) {
              const double value = base + 0.25 * ((di ? 1 : -1) * sx +
                                                  (dj ? 1 : -1) * sy +
                                                  (dk ? 1 : -1) * sz);
              fine.u[fine.index(2 * I + di, 2 * J + dj, 2 * K + dk)] = value;
            }
          }
        }
      }
    }
  }
  counters.flops += 14.0 * static_cast<double>(coarse.cells());
  counters.bytes += 8.0 * static_cast<double>(coarse.cells()) +
                    8.0 * static_cast<double>(fine.cells());
  ++counters.kernelLaunches;
}

}  // namespace rebench::hpgmg
