#include "hpgmg/mg.hpp"

#include <cmath>
#include <numbers>

#include "core/util/error.hpp"

namespace rebench::hpgmg {

MgSolver::MgSolver(int nFine, MgOptions options)
    : options_(std::move(options)) {
  REBENCH_REQUIRE(nFine >= options_.bottomSize);
  REBENCH_REQUIRE((nFine & (nFine - 1)) == 0);  // power of two
  int n = nFine;
  while (true) {
    levels_.push_back(std::make_unique<Level>(n));
    if (n <= options_.bottomSize) break;
    n /= 2;
  }
}

void MgSolver::bottomSolve(Level& level) {
  for (int s = 0; s < options_.bottomSweeps; ++s) {
    smoothGSRB(level, counters_, options_.pool);
  }
}

void MgSolver::vCycle(int depth) {
  Level& level = *levels_[depth];
  if (depth == numLevels() - 1) {
    bottomSolve(level);
    return;
  }
  Level& coarse = *levels_[depth + 1];

  for (int s = 0; s < options_.preSmooth; ++s) smoothGSRB(level, counters_, options_.pool);
  computeResidual(level, counters_, options_.pool);
  restrictResidual(level, coarse, counters_);
  std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
  vCycle(depth + 1);
  prolongCorrection(coarse, level, counters_);
  for (int s = 0; s < options_.postSmooth; ++s) smoothGSRB(level, counters_, options_.pool);
  if (depth == 0) ++counters_.vCycles;
}

void MgSolver::restrictRhsToAllLevels() {
  // FMG needs the RHS on every level; restrict f (not a residual) by the
  // same 8-cell averaging, using r as a staging buffer.
  for (int depth = 0; depth + 1 < numLevels(); ++depth) {
    Level& fine = *levels_[depth];
    Level& coarse = *levels_[depth + 1];
    fine.r = fine.f;
    restrictResidual(fine, coarse, counters_);
  }
}

double MgSolver::fmgSolve() {
  restrictRhsToAllLevels();

  // Solve the coarsest level from zero.
  Level& bottom = *levels_.back();
  std::fill(bottom.u.begin(), bottom.u.end(), 0.0);
  bottomSolve(bottom);

  // Walk up: interpolate the solution, then correct with V-cycles.
  for (int depth = numLevels() - 2; depth >= 0; --depth) {
    interpolateSolution(*levels_[depth + 1], *levels_[depth], counters_);
    for (int c = 0; c < options_.fmgVcyclesPerLevel; ++c) {
      vCycle(depth);
    }
  }
  return computeResidual(fineLevel(), counters_, options_.pool);
}

std::vector<double> MgSolver::iterate(int cycles) {
  std::vector<double> residuals;
  residuals.reserve(cycles);
  for (int c = 0; c < cycles; ++c) {
    vCycle(0);
    residuals.push_back(computeResidual(fineLevel(), counters_, options_.pool));
  }
  return residuals;
}

void fillManufacturedRhs(Level& level) {
  using std::numbers::pi;
  // -lap(u*) = 3 pi^2 u* for u* = sin(pi x) sin(pi y) sin(pi z); with the
  // FV cell-average convention we evaluate at cell centres (2nd order).
  for (int k = 0; k < level.n; ++k) {
    for (int j = 0; j < level.n; ++j) {
      for (int i = 0; i < level.n; ++i) {
        const double x = (i + 0.5) * level.h;
        const double y = (j + 0.5) * level.h;
        const double z = (k + 0.5) * level.h;
        level.f[level.index(i, j, k)] = 3.0 * pi * pi * std::sin(pi * x) *
                                        std::sin(pi * y) * std::sin(pi * z);
      }
    }
  }
}

double manufacturedError(const Level& level) {
  using std::numbers::pi;
  double err = 0.0;
  for (int k = 0; k < level.n; ++k) {
    for (int j = 0; j < level.n; ++j) {
      for (int i = 0; i < level.n; ++i) {
        const double x = (i + 0.5) * level.h;
        const double y = (j + 0.5) * level.h;
        const double z = (k + 0.5) * level.h;
        const double exact = std::sin(pi * x) * std::sin(pi * y) *
                             std::sin(pi * z);
        err = std::max(err,
                       std::abs(level.u[level.index(i, j, k)] - exact));
      }
    }
  }
  return err;
}

}  // namespace rebench::hpgmg
