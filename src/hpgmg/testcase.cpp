#include "hpgmg/testcase.hpp"

namespace rebench::hpgmg {

RegressionTest makeHpgmgTest(const HpgmgTestOptions& options) {
  RegressionTest test;
  test.name = "HpgmgFvBenchmark";
  test.spackSpec = "hpgmg%gcc +fv";
  test.numTasks = options.numTasks;
  test.numTasksPerNode = options.numTasksPerNode;
  test.numCpusPerTask = options.numCpusPerTask;
  test.executableOpts = {std::to_string(options.log2BoxDim),
                         std::to_string(options.targetBoxesPerRank)};
  test.sanityPattern = R"(Validation: PASSED)";
  test.perfPatterns = {
      {"l0", R"(l0: .*rate=([0-9]+\.[0-9]+) MDOF/s)", Unit::kMDofPerSec},
      {"l1", R"(l1: .*rate=([0-9]+\.[0-9]+) MDOF/s)", Unit::kMDofPerSec},
      {"l2", R"(l2: .*rate=([0-9]+\.[0-9]+) MDOF/s)", Unit::kMDofPerSec},
  };

  test.run = [options](const RunContext& ctx) -> RunOutput {
    RunOutput out;
    const std::string& machineId = ctx.partition->machineModel;
    if (machineId.empty()) {
      const HpgmgResult result = runNative(options.nativeFineEdge);
      out.stdoutText = formatOutput(result);
      out.elapsedSeconds = result.totalSeconds;
      return out;
    }
    HpgmgConfig config;
    config.log2BoxDim = options.log2BoxDim;
    config.targetBoxesPerRank = options.targetBoxesPerRank;
    config.numRanks = options.numTasks;
    const MachineModel& machine = builtinMachines().get(machineId);
    const std::string salt =
        ctx.repeatIndex > 0 ? ":rep" + std::to_string(ctx.repeatIndex) : "";
    const HpgmgResult result =
        runModeled(config, machine, ctx.partition->platformEfficiency,
                   ctx.partition->launchOverheadSeconds, 32, salt);
    out.stdoutText = formatOutput(result);
    out.elapsedSeconds = result.totalSeconds;
    return out;
  };
  return test;
}

}  // namespace rebench::hpgmg
