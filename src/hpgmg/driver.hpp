// HPGMG-FV benchmark driver.
//
// HPGMG reports a compute rate (DOF/s) for the full problem and for the
// problems 1/8 and 1/64 of that size — the l0/l1/l2 columns of Table 4.
// The CLI convention follows real HPGMG: `log2BoxDim targetBoxesPerRank`
// ("7 8" in the paper), with the box count times ranks fixing the global
// problem size.
#pragma once

#include <string>
#include <vector>

#include "hpgmg/mg.hpp"
#include "sim/machine.hpp"

namespace rebench::hpgmg {

struct HpgmgConfig {
  int log2BoxDim = 7;        // paper: 7 (128^3 boxes)
  int targetBoxesPerRank = 8;  // paper: 8
  int numRanks = 8;          // paper: 8 tasks, 2 per node
  int tasksPerNode = 2;      // appendix geometry

  int numNodes() const {
    return (numRanks + tasksPerNode - 1) / tasksPerNode;
  }
};

/// Global degrees of freedom of the full (l0) problem for a config.
std::size_t globalDof(const HpgmgConfig& config);

struct LevelFom {
  std::string name;       // "l0", "l1", "l2"
  std::size_t dof = 0;
  double seconds = 0.0;
  double mdofPerSec = 0.0;  // 10^6 DOF/s, Table 4's unit
};

struct HpgmgResult {
  HpgmgConfig config;
  std::vector<LevelFom> foms;  // [l0, l1, l2]
  double finalResidual = 0.0;
  double residualReduction = 0.0;  // final / rhs-norm proxy
  bool validated = false;
  WorkCounters counters;  // of the l0 solve
  double totalSeconds = 0.0;
};

/// Runs three FMG solves natively at edge sizes nFine, nFine/2, nFine/4.
HpgmgResult runNative(int nFine);

/// Projects the paper configuration onto a machine model + platform
/// character (platformEfficiency, per-launch overhead).  Counters come
/// from a real calibration solve at `calibrationEdge`.
HpgmgResult runModeled(const HpgmgConfig& config,
                       const MachineModel& machine,
                       double platformEfficiency,
                       double launchOverheadSeconds,
                       int calibrationEdge = 32,
                       const std::string& noiseSalt = {});

/// Renders the benchmark stdout (framework-parsable).
std::string formatOutput(const HpgmgResult& result);

}  // namespace rebench::hpgmg
