// The multigrid hierarchy: V-cycles and the Full Multigrid (FMG) driver
// HPGMG-FV benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "hpgmg/fv.hpp"

namespace rebench::hpgmg {

struct MgOptions {
  int preSmooth = 2;
  int postSmooth = 2;
  int bottomSize = 4;       // coarsest level edge
  int bottomSweeps = 48;    // GSRB sweeps as the bottom solve
  int fmgVcyclesPerLevel = 1;
  /// Threads the smoother/residual/operator kernels (the "8 cpus per
  /// task" of the appendix geometry); null runs serially.
  ThreadPool* pool = nullptr;
};

class MgSolver {
 public:
  /// Builds the hierarchy for a fine grid of edge `nFine` (power of two).
  MgSolver(int nFine, MgOptions options = {});

  Level& fineLevel() { return *levels_.front(); }
  const Level& fineLevel() const { return *levels_.front(); }
  int numLevels() const { return static_cast<int>(levels_.size()); }

  /// One V-cycle on level `depth` (0 = finest).
  void vCycle(int depth);

  /// Full multigrid: restricts f to every level, solves coarsest, then
  /// interpolate+V-cycle up to the finest.  Returns final ||r||_2 on the
  /// fine level.
  double fmgSolve();

  /// Plain V-cycle iteration from the current fine u; returns residuals
  /// after each cycle.
  std::vector<double> iterate(int cycles);

  const WorkCounters& counters() const { return counters_; }
  void resetCounters() { counters_ = {}; }

 private:
  void restrictRhsToAllLevels();
  void bottomSolve(Level& level);

  MgOptions options_;
  std::vector<std::unique_ptr<Level>> levels_;  // [0] finest
  WorkCounters counters_;
};

/// Sets f for the manufactured problem u* = prod sin(pi x_d) (beta = 1),
/// whose exact solution vanishes on the boundary.
void fillManufacturedRhs(Level& level);

/// Max-norm error of level.u against the manufactured solution.
double manufacturedError(const Level& level);

}  // namespace rebench::hpgmg
