// Framework test description for HPGMG-FV (§3.3 / Table 4), equivalent to
// benchmarks/apps/hpgmg in the paper's repository.
#pragma once

#include "core/framework/regression_test.hpp"
#include "hpgmg/driver.hpp"

namespace rebench::hpgmg {

struct HpgmgTestOptions {
  /// Executable arguments, real-HPGMG style ("7 8" in the appendix).
  int log2BoxDim = 7;
  int targetBoxesPerRank = 8;
  /// Appendix A.1.3 job geometry.
  int numTasks = 8;
  int numTasksPerNode = 2;
  int numCpusPerTask = 8;
  /// Fine-grid edge for native runs.
  int nativeFineEdge = 32;
};

/// Spec "hpgmg%gcc +fv"; sanity "Validation: PASSED"; FOMs l0/l1/l2 in
/// MDOF/s, extracted exactly like ReFrame does from HPGMG's output.
RegressionTest makeHpgmgTest(const HpgmgTestOptions& options = {});

}  // namespace rebench::hpgmg
