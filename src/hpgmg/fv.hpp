// Finite-volume kernels: operator application, red-black Gauss-Seidel
// smoothing, residual, restriction and interpolation.
//
// Boundary condition: homogeneous Dirichlet at the cube faces realised
// through the standard cell-centred ghost value u_ghost = -u_cell, which
// keeps the discrete operator symmetric positive definite and second-order
// at the boundary.
#pragma once

#include <span>

#include "hpgmg/level.hpp"
#include "parallel/thread_pool.hpp"

namespace rebench::hpgmg {

// Every kernel takes an optional thread pool: null runs the loops
// serially; a pool shares the k-planes across workers (GSRB is safe to
// thread per colour — that is what red-black ordering buys).  The
// counters are identical either way.

/// out = A u  (7-point variable-coefficient FV Laplacian).
void applyOperator(const Level& level, std::span<const double> u,
                   std::span<double> out, WorkCounters& counters,
                   ThreadPool* pool = nullptr);

/// level.r = level.f - A level.u; returns ||r||_2.
double computeResidual(Level& level, WorkCounters& counters,
                       ThreadPool* pool = nullptr);

/// One red-black Gauss-Seidel sweep (both colours) on A u = f.
void smoothGSRB(Level& level, WorkCounters& counters,
                ThreadPool* pool = nullptr);

/// coarse.f = restrict(fine.r) by 8-cell averaging.
void restrictResidual(const Level& fine, Level& coarse,
                      WorkCounters& counters);

/// fine.u += prolong(coarse.u), piecewise-constant injection (V-cycle
/// correction transfer).
void prolongCorrection(const Level& coarse, Level& fine,
                       WorkCounters& counters);

/// fine.u = interpolate(coarse.u) with trilinear reconstruction — the
/// higher-order transfer FMG needs to reach discretisation accuracy.
void interpolateSolution(const Level& coarse, Level& fine,
                         WorkCounters& counters);

/// Diagonal of A at (i,j,k) — used by the smoother.
double operatorDiagonal(const Level& level, int i, int j, int k);

}  // namespace rebench::hpgmg
