// HPGMG-FV grid levels.
//
// Cell-centred finite-volume discretisation of -div(beta grad u) = f on
// the unit cube with homogeneous Dirichlet boundaries.  Each level is a
// full cube of edge n; the hierarchy coarsens by 2 per level down to a
// small bottom level.  Face coefficient arrays are kept (and streamed by
// every kernel) to preserve the variable-coefficient code path of real
// HPGMG-FV even though this reproduction fills them with beta == 1.
#pragma once

#include <cstddef>
#include <vector>

namespace rebench::hpgmg {

struct Level {
  int n = 0;       // cells per edge
  double h = 0.0;  // cell width, 1/n
  std::vector<double> u;     // solution
  std::vector<double> f;     // right-hand side
  std::vector<double> r;     // residual scratch
  // Face coefficients on the low face of each cell in each direction.
  std::vector<double> bx, by, bz;

  explicit Level(int edge);

  std::size_t cells() const {
    return static_cast<std::size_t>(n) * n * n;
  }
  std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(n) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  }
};

/// Traffic/flop accounting accumulated by every kernel invocation.
struct WorkCounters {
  double flops = 0.0;
  double bytes = 0.0;
  int smootherSweeps = 0;
  int vCycles = 0;
  int kernelLaunches = 0;
};

}  // namespace rebench::hpgmg
