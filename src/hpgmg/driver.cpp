#include "hpgmg/driver.hpp"

#include <cmath>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "core/util/timer.hpp"
#include "sim/roofline.hpp"

namespace rebench::hpgmg {

std::size_t globalDof(const HpgmgConfig& config) {
  const std::size_t boxCells = std::size_t{1}
                               << (3 * config.log2BoxDim);  // (2^d)^3
  return boxCells * config.targetBoxesPerRank * config.numRanks;
}

namespace {

/// One native FMG solve at edge `n`; returns (seconds, counters, result
/// diagnostics via out-params).
double solveOnce(int n, WorkCounters& countersOut, double& residualOut,
                 double& errorOut) {
  MgSolver solver(n);
  fillManufacturedRhs(solver.fineLevel());
  WallTimer timer;
  residualOut = solver.fmgSolve();
  const double seconds = timer.elapsed();
  errorOut = manufacturedError(solver.fineLevel());
  countersOut = solver.counters();
  return seconds;
}

}  // namespace

HpgmgResult runNative(int nFine) {
  REBENCH_REQUIRE(nFine >= 16 && (nFine & (nFine - 1)) == 0);
  HpgmgResult result;
  result.config.log2BoxDim = 0;  // native runs are un-boxed
  result.config.numRanks = 1;

  int n = nFine;
  for (const char* name : {"l0", "l1", "l2"}) {
    WorkCounters counters;
    double residual = 0.0, error = 0.0;
    const double seconds = solveOnce(n, counters, residual, error);
    LevelFom fom;
    fom.name = name;
    fom.dof = static_cast<std::size_t>(n) * n * n;
    fom.seconds = seconds;
    fom.mdofPerSec = static_cast<double>(fom.dof) / seconds / 1.0e6;
    result.foms.push_back(fom);
    result.totalSeconds += seconds;
    if (std::string_view(name) == "l0") {
      result.finalResidual = residual;
      result.counters = counters;
      // FMG must land at discretisation accuracy: the manufactured-
      // solution error bounds validation, not the algebraic residual.
      result.validated = error < 10.0 / (n * n);
      result.residualReduction = residual;
    }
    n /= 2;
  }
  return result;
}

HpgmgResult runModeled(const HpgmgConfig& config,
                       const MachineModel& machine,
                       double platformEfficiency,
                       double launchOverheadSeconds, int calibrationEdge,
                       const std::string& noiseSalt) {
  REBENCH_REQUIRE(platformEfficiency > 0.0);
  // Calibrate bytes/flops/launches per DOF with a real solve.
  WorkCounters calib;
  double residual = 0.0, error = 0.0;
  solveOnce(calibrationEdge, calib, residual, error);
  const double calibDof = static_cast<double>(calibrationEdge) *
                          calibrationEdge * calibrationEdge;
  const double bytesPerDof = calib.bytes / calibDof;
  const double flopsPerDof = calib.flops / calibDof;

  HpgmgResult result;
  result.config = config;
  result.finalResidual = residual;
  result.validated = error < 10.0 / (calibrationEdge * calibrationEdge);
  result.counters = calib;

  ExecutionEfficiency eff;
  eff.bandwidthFraction = platformEfficiency;
  eff.computeFraction = std::min(1.0, platformEfficiency * 4.0);

  // Memory traffic is served by every allocated node in parallel; the
  // roofline sees each node's share.
  const double nodes = std::max(1, config.numNodes());
  std::size_t dof = globalDof(config);
  // Each halving of the problem edge removes one multigrid level; the
  // launch count shrinks only slightly, which is why small problems are
  // overhead-dominated (the l2 fall-off in Table 4).
  double launches = static_cast<double>(calib.kernelLaunches) *
                    std::log2(static_cast<double>(dof)) /
                    std::log2(calibDof);
  for (const char* name : {"l0", "l1", "l2"}) {
    KernelProfile profile;
    profile.bytesRead =
        0.7 * bytesPerDof * static_cast<double>(dof) / nodes;
    profile.bytesWritten =
        0.3 * bytesPerDof * static_cast<double>(dof) / nodes;
    profile.flops = flopsPerDof * static_cast<double>(dof) / nodes;
    const std::string key = "hpgmg:" + machine.id + ":" + name + ":" +
                            std::to_string(dof) + noiseSalt;
    const SimulatedTime sim = simulateKernel(machine, profile, eff, key);
    // Per-launch overheads: smoother/residual/transfer kernels plus the
    // halo exchanges and collectives each level implies.
    const double overhead =
        launches * launchOverheadSeconds *
        std::max(1.0, std::log2(static_cast<double>(config.numRanks)));

    LevelFom fom;
    fom.name = name;
    fom.dof = dof;
    fom.seconds = sim.seconds + overhead;
    fom.mdofPerSec = static_cast<double>(dof) / fom.seconds / 1.0e6;
    result.foms.push_back(fom);
    result.totalSeconds += fom.seconds;

    dof /= 8;
    launches -= static_cast<double>(calib.kernelLaunches) /
                std::max(1, calib.vCycles + 6);  // one level fewer
    launches = std::max(launches, 8.0);
  }
  return result;
}

std::string formatOutput(const HpgmgResult& result) {
  std::string out;
  out += "HPGMG-FV (rebench reproduction)\n";
  if (result.config.log2BoxDim > 0) {
    out += "args: log2_box_dim=" + std::to_string(result.config.log2BoxDim) +
           " target_boxes_per_rank=" +
           std::to_string(result.config.targetBoxesPerRank) +
           " ranks=" + std::to_string(result.config.numRanks) + "\n";
  }
  for (const LevelFom& fom : result.foms) {
    out += fom.name + ": DOF=" + std::to_string(fom.dof) + " time=" +
           str::fixed(fom.seconds, 6) + " s rate=" +
           str::fixed(fom.mdofPerSec, 2) + " MDOF/s\n";
  }
  out += "FMG final residual: " + str::fixed(result.finalResidual, 6) + "\n";
  out += std::string("Validation: ") +
         (result.validated ? "PASSED" : "FAILED") + "\n";
  return out;
}

}  // namespace rebench::hpgmg
