// BabelStream drivers: native execution (real arrays, wall-clock) and
// modelled execution (same kernels for correctness at reduced size, timing
// from the machine model at paper scale).
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>

#include "babelstream/backend.hpp"
#include "babelstream/models.hpp"
#include "babelstream/stream.hpp"
#include "sim/machine.hpp"

namespace rebench::babelstream {

struct KernelTiming {
  double minSeconds = 0.0;
  double maxSeconds = 0.0;
  double avgSeconds = 0.0;
  /// BabelStream reports MBytes/sec computed from the *minimum* time.
  double mbytesPerSec = 0.0;
};

struct StreamResult {
  std::string model;        // programming-model id
  std::string platform;     // machine id or "native"
  std::size_t arraySize = 0;
  int ntimes = 0;
  std::map<Kernel, KernelTiming> timings;
  bool validated = false;
  /// Sum of average kernel times — the job's runtime contribution.
  double totalSeconds = 0.0;

  double triadGBs() const;
};

/// Runs the named native backend on this host.  Throws NotFoundError for
/// ids with no native implementation.
StreamResult runNative(std::string_view backendId, std::size_t arraySize,
                       int ntimes);

/// Models the named programming model on `machine` at `arraySize`.
/// Correctness still executes real kernels (at `checkSize` elements);
/// timing comes from the roofline.  Returns nullopt when the (model,
/// machine) combination is unsupported — a Figure 2 "*" cell.
std::optional<StreamResult> runModeled(std::string_view modelId,
                                       const MachineModel& machine,
                                       std::size_t arraySize, int ntimes,
                                       std::size_t checkSize = 4096,
                                       const std::string& noiseSalt = {});

/// Reason string for an unsupported combination (empty when supported).
std::string unsupportedReason(std::string_view modelId,
                              const MachineModel& machine);

/// Renders BabelStream's canonical stdout for a result; the framework's
/// perf_patterns regexes parse this text, exactly as ReFrame parses the
/// real benchmark's output.
std::string formatOutput(const StreamResult& result);

/// §3.1's array-sizing rule: the smallest power-of-two element count whose
/// three arrays overflow 4x the machine's LLC (2^25 default, 2^29 on
/// large-L3 Milan/Rome parts).
std::size_t paperArraySize(const MachineModel& machine);

}  // namespace rebench::babelstream
