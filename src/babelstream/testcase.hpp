// ReFrame-style test descriptions for BabelStream — the glue between the
// benchmark implementation and the framework pipeline, equivalent to
// benchmarks/apps/babelstream in the paper's repository.
#pragma once

#include <string>

#include "core/framework/regression_test.hpp"

namespace rebench::babelstream {

struct BabelstreamTestOptions {
  /// Programming-model id ("omp", "cuda", ...).
  std::string model = "omp";
  /// 0 = use §3.1's per-platform array-size rule.
  std::size_t arraySize = 0;
  int ntimes = 100;
  /// Array size for native runs (kept modest: the host is not the DUT).
  std::size_t nativeArraySize = std::size_t{1} << 22;
};

/// Builds the regression test: spec "babelstream%... model=<id>", sanity
/// "Validation: PASSED", FOM "Triad" in MB/s.  On partitions with a
/// machine model the body runs the modelled path; on "local" it runs
/// natively.  Unsupported (model, platform) combinations surface as launch
/// failures, which the pipeline records as Figure 2's "*" cells.
RegressionTest makeBabelstreamTest(const BabelstreamTestOptions& options);

}  // namespace rebench::babelstream
