// Native implementations of the stream kernels, one class per programming
// model.  The kernels are deliberately written in each model's idiom —
// the point of BabelStream is to compare what the *same* five loops cost
// when expressed through different abstractions.
#include <algorithm>
#include <execution>
#include <numeric>
#include <ranges>

#include "babelstream/backend.hpp"
#include "parallel/thread_pool.hpp"

namespace rebench::babelstream {

namespace {

/// Plain sequential loops: the baseline every model is compared against.
class SerialBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "serial"; }

  void copy(StreamArrays& s) override {
    for (std::size_t i = 0; i < s.size(); ++i) s.c[i] = s.a[i];
  }
  void mul(StreamArrays& s) override {
    for (std::size_t i = 0; i < s.size(); ++i) s.b[i] = kScalar * s.c[i];
  }
  void add(StreamArrays& s) override {
    for (std::size_t i = 0; i < s.size(); ++i) s.c[i] = s.a[i] + s.b[i];
  }
  void triad(StreamArrays& s) override {
    for (std::size_t i = 0; i < s.size(); ++i) {
      s.a[i] = s.b[i] + kScalar * s.c[i];
    }
  }
  double dot(StreamArrays& s) override {
    double sum = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) sum += s.a[i] * s.b[i];
    return sum;
  }
};

/// "OpenMP": block-static worksharing over the thread pool, the shape of
/// `#pragma omp parallel for`.
class OmpBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "omp"; }

  void copy(StreamArrays& s) override {
    parallelForBlocked(pool(), 0, s.size(),
                       [&s](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           s.c[i] = s.a[i];
                         }
                       });
  }
  void mul(StreamArrays& s) override {
    parallelForBlocked(pool(), 0, s.size(),
                       [&s](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           s.b[i] = kScalar * s.c[i];
                         }
                       });
  }
  void add(StreamArrays& s) override {
    parallelForBlocked(pool(), 0, s.size(),
                       [&s](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           s.c[i] = s.a[i] + s.b[i];
                         }
                       });
  }
  void triad(StreamArrays& s) override {
    parallelForBlocked(pool(), 0, s.size(),
                       [&s](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           s.a[i] = s.b[i] + kScalar * s.c[i];
                         }
                       });
  }
  double dot(StreamArrays& s) override {
    return parallelReduceSumBlocked(
        pool(), 0, s.size(), [&s](std::size_t lo, std::size_t hi) {
          double sum = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sum += s.a[i] * s.b[i];
          return sum;
        });
  }

 private:
  static ThreadPool& pool() { return ThreadPool::global(); }
};

/// "Kokkos (OpenMP backend)": functor-per-index dispatch — same pool, but
/// paying the per-index abstraction cost a C++ mdspan-style library pays.
class KokkosBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "kokkos"; }

  void copy(StreamArrays& s) override {
    forEach(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i]; });
  }
  void mul(StreamArrays& s) override {
    forEach(s.size(), [&s](std::size_t i) { s.b[i] = kScalar * s.c[i]; });
  }
  void add(StreamArrays& s) override {
    forEach(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i] + s.b[i]; });
  }
  void triad(StreamArrays& s) override {
    forEach(s.size(),
            [&s](std::size_t i) { s.a[i] = s.b[i] + kScalar * s.c[i]; });
  }
  double dot(StreamArrays& s) override {
    return parallelReduceSum(
        ThreadPool::global(), 0, s.size(),
        [&s](std::size_t i) { return s.a[i] * s.b[i]; });
  }

 private:
  static void forEach(std::size_t n,
                      const std::function<void(std::size_t)>& fn) {
    parallelFor(ThreadPool::global(), 0, n, fn, Schedule::kStatic);
  }
};

/// "TBB": dynamic chunked scheduling (task stealing approximated by a
/// shared-counter dynamic schedule).
class TbbBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "tbb"; }

  void copy(StreamArrays& s) override {
    dynamicFor(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i]; });
  }
  void mul(StreamArrays& s) override {
    dynamicFor(s.size(), [&s](std::size_t i) { s.b[i] = kScalar * s.c[i]; });
  }
  void add(StreamArrays& s) override {
    dynamicFor(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i] + s.b[i]; });
  }
  void triad(StreamArrays& s) override {
    dynamicFor(s.size(),
               [&s](std::size_t i) { s.a[i] = s.b[i] + kScalar * s.c[i]; });
  }
  double dot(StreamArrays& s) override {
    return parallelReduceSum(
        ThreadPool::global(), 0, s.size(),
        [&s](std::size_t i) { return s.a[i] * s.b[i]; });
  }

 private:
  static void dynamicFor(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
    parallelFor(ThreadPool::global(), 0, n, fn, Schedule::kDynamic,
                /*grain=*/8192);
  }
};

/// "std-data": parallel algorithms over data iterators
/// (std::transform(par_unseq, ...)).  libstdc++ would need TBB for real
/// parallel execution; here the pool plays that role.
class StdDataBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "std-data"; }

  void copy(StreamArrays& s) override {
    std::copy(std::execution::unseq, s.a.begin(), s.a.end(), s.c.begin());
  }
  void mul(StreamArrays& s) override {
    std::transform(std::execution::unseq, s.c.begin(), s.c.end(),
                   s.b.begin(), [](double ci) { return kScalar * ci; });
  }
  void add(StreamArrays& s) override {
    std::transform(std::execution::unseq, s.a.begin(), s.a.end(),
                   s.b.begin(), s.c.begin(),
                   [](double ai, double bi) { return ai + bi; });
  }
  void triad(StreamArrays& s) override {
    std::transform(std::execution::unseq, s.b.begin(), s.b.end(),
                   s.c.begin(), s.a.begin(),
                   [](double bi, double ci) { return bi + kScalar * ci; });
  }
  double dot(StreamArrays& s) override {
    return std::transform_reduce(std::execution::unseq, s.a.begin(),
                                 s.a.end(), s.b.begin(), 0.0);
  }
};

/// "std-indices": parallel algorithms over an index space
/// (for_each over iota).
class StdIndicesBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "std-indices"; }

  void copy(StreamArrays& s) override {
    indexFor(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i]; });
  }
  void mul(StreamArrays& s) override {
    indexFor(s.size(), [&s](std::size_t i) { s.b[i] = kScalar * s.c[i]; });
  }
  void add(StreamArrays& s) override {
    indexFor(s.size(), [&s](std::size_t i) { s.c[i] = s.a[i] + s.b[i]; });
  }
  void triad(StreamArrays& s) override {
    indexFor(s.size(),
             [&s](std::size_t i) { s.a[i] = s.b[i] + kScalar * s.c[i]; });
  }
  double dot(StreamArrays& s) override {
    auto ids = std::views::iota(std::size_t{0}, s.size());
    return std::transform_reduce(
        std::execution::unseq, ids.begin(), ids.end(), 0.0, std::plus<>{},
        [&s](std::size_t i) { return s.a[i] * s.b[i]; });
  }

 private:
  static void indexFor(std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
    auto ids = std::views::iota(std::size_t{0}, n);
    std::for_each(std::execution::unseq, ids.begin(), ids.end(), fn);
  }
};

/// "std-ranges": range pipelines.  The paper notes the multicore version
/// of std-ranges is work-in-progress and executes single-threaded — this
/// backend is intentionally sequential for the same reason.
class StdRangesBackend final : public StreamBackend {
 public:
  std::string_view name() const override { return "std-ranges"; }

  void copy(StreamArrays& s) override {
    std::ranges::copy(s.a, s.c.begin());
  }
  void mul(StreamArrays& s) override {
    std::ranges::transform(s.c, s.b.begin(),
                           [](double ci) { return kScalar * ci; });
  }
  void add(StreamArrays& s) override {
    std::ranges::transform(s.a, s.b, s.c.begin(), std::plus<>{});
  }
  void triad(StreamArrays& s) override {
    std::ranges::transform(
        s.b, s.c, s.a.begin(),
        [](double bi, double ci) { return bi + kScalar * ci; });
  }
  double dot(StreamArrays& s) override {
    return std::inner_product(s.a.begin(), s.a.end(), s.b.begin(), 0.0);
  }
};

}  // namespace

std::unique_ptr<StreamBackend> makeNativeBackend(std::string_view id) {
  if (id == "serial") return std::make_unique<SerialBackend>();
  if (id == "omp") return std::make_unique<OmpBackend>();
  if (id == "kokkos") return std::make_unique<KokkosBackend>();
  if (id == "tbb") return std::make_unique<TbbBackend>();
  if (id == "std-data") return std::make_unique<StdDataBackend>();
  if (id == "std-indices") return std::make_unique<StdIndicesBackend>();
  if (id == "std-ranges") return std::make_unique<StdRangesBackend>();
  return nullptr;
}

std::vector<std::string> nativeBackendIds() {
  return {"serial",   "omp",         "kokkos",    "tbb",
          "std-data", "std-indices", "std-ranges"};
}

}  // namespace rebench::babelstream
