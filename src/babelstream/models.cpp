#include "babelstream/models.hpp"

#include "core/util/error.hpp"

namespace rebench::babelstream {

namespace {

bool isX86Cpu(const MachineModel& m) {
  return m.device == DeviceType::kCpu &&
         (m.vendor == "Intel" || m.vendor == "AMD");
}

bool isArmCpu(const MachineModel& m) {
  return m.device == DeviceType::kCpu && m.vendor == "Marvell";
}

bool isNvidiaGpu(const MachineModel& m) {
  return m.device == DeviceType::kGpu && m.vendor == "NVIDIA";
}

ModelSupport unsupported(std::string reason) {
  ModelSupport s;
  s.supported = false;
  s.reason = std::move(reason);
  return s;
}

ModelSupport supported(std::string compilerLabel, double bwFraction,
                       int coresUsed = 0, double extraLatency = 0.0) {
  ModelSupport s;
  s.supported = true;
  s.compilerLabel = std::move(compilerLabel);
  s.efficiency.bandwidthFraction = bwFraction;
  s.efficiency.coresUsed = coresUsed;
  s.efficiency.extraLatency = extraLatency;
  return s;
}

std::string gccLabel(const MachineModel& m) {
  // §3.1: GCC 9.2.0 on the Isambard-MACS systems (incl. its Volta),
  // GCC 12.1.0 on Noctua2/Milan, GCC 10.3.0 elsewhere.
  if (m.id == "clx-6230" || m.id == "v100") return "%gcc@9.2.0";
  if (m.id == "milan-7763") return "%gcc@12.1.0";
  return "%gcc@10.3.0";
}

}  // namespace

ModelSupport ProgrammingModel::supportOn(const MachineModel& m) const {
  // --- OpenMP: "works on all devices" (§3.1), best utilisation on the
  // x86 CPUs with GCC.
  if (id == "omp") {
    if (isNvidiaGpu(m)) return supported("%nvhpc@22.11 (target offload)", 0.86);
    if (isArmCpu(m)) return supported(gccLabel(m), 0.88);
    return supported(gccLabel(m), 0.95);
  }

  // --- Kokkos over an OpenMP (CPU) or CUDA (GPU) backend.
  if (id == "kokkos") {
    if (isNvidiaGpu(m)) return supported("+cuda %nvcc@11.2", 0.90);
    return supported("+omp " + gccLabel(m), 0.90);
  }

  // --- CUDA: NVIDIA GPUs only ("incompatibilities: CUDA on CPUs").
  if (id == "cuda") {
    if (isNvidiaGpu(m)) return supported("%nvcc@11.2", 0.97);
    return unsupported("CUDA requires an NVIDIA GPU");
  }

  // --- OpenCL: excellent on the V100; Intel CPU runtime exists; no
  // vendor CPU runtime on ThunderX2 or the AMD Rome/Milan systems tested.
  if (id == "ocl") {
    if (isNvidiaGpu(m)) return supported("%gcc@9.2.0 (NVIDIA OpenCL)", 0.96);
    if (m.vendor == "Intel") {
      return supported("%gcc (Intel CPU runtime)", 0.78);
    }
    return unsupported("no OpenCL CPU runtime installed");
  }

  // --- SYCL via oneAPI: Intel and AMD x86 CPUs; no sm_70 toolchain on
  // the tested system; no aarch64 oneAPI.
  if (id == "sycl") {
    if (isX86Cpu(m)) return supported("%oneapi@2023.1.0", 0.84);
    if (isNvidiaGpu(m)) {
      return unsupported("no SYCL toolchain targeting sm_70 installed");
    }
    return unsupported("oneAPI SYCL unavailable on aarch64");
  }

  // --- TBB: x86-only ("incompatibilities: Intel-TBB on Thunder").
  if (id == "tbb") {
    if (isX86Cpu(m)) {
      // The paper observes a disparity between paderborn-milan and
      // isambard-macs:cascadelake TBB results.
      const double bw = (m.id == "milan-7763") ? 0.88 : 0.68;
      return supported("%oneapi@2023.1.0", bw);
    }
    if (isNvidiaGpu(m)) return unsupported("TBB targets CPUs only");
    return unsupported("Intel TBB does not build on ThunderX2");
  }

  // --- ISO C++ parallel algorithms.  Multicore execution requires the
  // TBB backend under libstdc++; where TBB is missing they run, but on a
  // single thread (the degradation §3.1 describes on isambard-xci).
  if (id == "std-data" || id == "std-indices") {
    const double bw = (id == "std-data") ? 0.87 : 0.85;
    if (isX86Cpu(m)) return supported(gccLabel(m) + " +tbb", bw);
    if (isArmCpu(m)) {
      return supported(gccLabel(m) + " (no TBB: serial)", 1.0, /*cores=*/1);
    }
    return unsupported("no stdpar offload toolchain on this system");
  }

  // --- std-ranges: "the multicore version of std-ranges is a work in
  // progress, and it only executes in a single thread" (§3.1).
  if (id == "std-ranges") {
    if (m.device == DeviceType::kCpu) {
      return supported(gccLabel(m) + " (single-thread)", 1.0, /*cores=*/1);
    }
    return unsupported("std-ranges has no device execution path");
  }

  if (id == "serial") {
    if (m.device == DeviceType::kCpu) {
      return supported(gccLabel(m), 1.0, /*cores=*/1);
    }
    return unsupported("serial CPU code does not run on a GPU");
  }

  return unsupported("unknown programming model '" + id + "'");
}

const std::vector<ProgrammingModel>& figure2Models() {
  static const std::vector<ProgrammingModel> models = {
      {"omp", "OpenMP", "omp"},
      {"kokkos", "Kokkos", "kokkos+omp"},
      {"cuda", "CUDA", "cuda"},
      {"ocl", "OpenCL", "ocl"},
      {"sycl", "SYCL", "sycl%oneapi"},
      {"tbb", "TBB", "tbb%oneapi"},
      {"std-data", "std-data", "std-data"},
      {"std-indices", "std-indices", "std-indices"},
      {"std-ranges", "std-ranges", "std-ranges"},
  };
  return models;
}

const ProgrammingModel& modelById(std::string_view id) {
  for (const ProgrammingModel& model : figure2Models()) {
    if (model.id == id) return model;
  }
  static const ProgrammingModel serial{"serial", "Serial", "serial"};
  if (id == "serial") return serial;
  throw NotFoundError("unknown programming model '" + std::string(id) + "'");
}

}  // namespace rebench::babelstream
