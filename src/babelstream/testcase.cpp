#include "babelstream/testcase.hpp"

#include "babelstream/run.hpp"
#include "core/util/error.hpp"

namespace rebench::babelstream {

RegressionTest makeBabelstreamTest(const BabelstreamTestOptions& options) {
  RegressionTest test;
  test.name = "BabelstreamTest_" + options.model;
  test.spackSpec = "babelstream model=" + options.model;
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.useAllCoresPerTask = true;  // the framework's BabelStream default
  test.sanityPattern = R"(Validation: PASSED)";
  test.perfPatterns = {
      {"Copy", R"(Copy\s+([0-9]+\.[0-9]+))", Unit::kMBperSec},
      {"Mul", R"(Mul\s+([0-9]+\.[0-9]+))", Unit::kMBperSec},
      {"Add", R"(Add\s+([0-9]+\.[0-9]+))", Unit::kMBperSec},
      {"Triad", R"(Triad\s+([0-9]+\.[0-9]+))", Unit::kMBperSec},
      {"Dot", R"(Dot\s+([0-9]+\.[0-9]+))", Unit::kMBperSec},
  };

  test.run = [options](const RunContext& ctx) -> RunOutput {
    RunOutput out;
    const std::string& machineId = ctx.partition->machineModel;
    if (machineId.empty()) {
      // Native partition (the "local" system).
      try {
        const StreamResult result = runNative(
            options.model, options.nativeArraySize, options.ntimes);
        out.stdoutText = formatOutput(result);
        out.elapsedSeconds = result.totalSeconds;
      } catch (const NotFoundError& e) {
        out.launchFailed = true;
        out.failureReason = e.what();
      }
      return out;
    }

    const MachineModel& machine = builtinMachines().get(machineId);
    const std::size_t arraySize =
        options.arraySize != 0 ? options.arraySize : paperArraySize(machine);
    const std::string salt =
        ctx.repeatIndex > 0 ? ":rep" + std::to_string(ctx.repeatIndex) : "";
    const auto result = runModeled(options.model, machine, arraySize,
                                   options.ntimes, 4096, salt);
    if (!result) {
      out.launchFailed = true;
      out.failureReason = unsupportedReason(options.model, machine);
      return out;
    }
    out.stdoutText = formatOutput(*result);
    out.elapsedSeconds = result->totalSeconds;
    return out;
  };
  return test;
}

}  // namespace rebench::babelstream
