// Programming-model backends for the BabelStream kernels.
//
// Each backend implements the same five kernels through a different
// parallel idiom, mirroring the models along Figure 2's vertical axis.
// GPU-only models (CUDA/OpenCL/SYCL) have no native backend on this host;
// they exist purely in the modelled-execution path (see models.hpp), which
// runs the *serial* backend for correctness and a machine model for time.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "babelstream/stream.hpp"

namespace rebench::babelstream {

class StreamBackend {
 public:
  virtual ~StreamBackend() = default;

  virtual std::string_view name() const = 0;

  virtual void copy(StreamArrays& s) = 0;   // c = a
  virtual void mul(StreamArrays& s) = 0;    // b = scalar * c
  virtual void add(StreamArrays& s) = 0;    // c = a + b
  virtual void triad(StreamArrays& s) = 0;  // a = b + scalar * c
  virtual double dot(StreamArrays& s) = 0;  // sum a[i]*b[i]

  /// Runs one full BabelStream iteration in canonical order.
  void iteration(StreamArrays& s) {
    copy(s);
    mul(s);
    add(s);
    triad(s);
  }
};

/// Backends runnable on the host.  Ids: "serial", "omp", "kokkos", "tbb",
/// "std-data", "std-indices", "std-ranges".  Returns nullptr for ids that
/// have no native implementation here (cuda/ocl/sycl).
std::unique_ptr<StreamBackend> makeNativeBackend(std::string_view id);

/// Every id with a native backend, in Figure 2 row order.
std::vector<std::string> nativeBackendIds();

}  // namespace rebench::babelstream
