#include "babelstream/stream.hpp"

#include <cmath>

#include "core/util/error.hpp"

namespace rebench::babelstream {

std::string_view kernelName(Kernel k) {
  switch (k) {
    case Kernel::kCopy: return "Copy";
    case Kernel::kMul: return "Mul";
    case Kernel::kAdd: return "Add";
    case Kernel::kTriad: return "Triad";
    case Kernel::kDot: return "Dot";
  }
  return "?";
}

double kernelBytesPerElement(Kernel k) {
  switch (k) {
    case Kernel::kCopy: return 2.0 * sizeof(double);   // c = a
    case Kernel::kMul: return 2.0 * sizeof(double);    // b = s*c
    case Kernel::kAdd: return 3.0 * sizeof(double);    // c = a+b
    case Kernel::kTriad: return 3.0 * sizeof(double);  // a = b+s*c
    case Kernel::kDot: return 2.0 * sizeof(double);    // sum += a*b
  }
  return 0.0;
}

double kernelFlopsPerElement(Kernel k) {
  switch (k) {
    case Kernel::kCopy: return 0.0;
    case Kernel::kMul: return 1.0;
    case Kernel::kAdd: return 1.0;
    case Kernel::kTriad: return 2.0;
    case Kernel::kDot: return 2.0;
  }
  return 0.0;
}

void GoldValues::stepIteration() {
  c = a;                // copy
  b = kScalar * c;      // mul
  c = a + b;            // add
  a = b + kScalar * c;  // triad
}

ValidationResult validate(const StreamArrays& arrays, int ntimes,
                          double dotResult, double epsilon) {
  REBENCH_REQUIRE(ntimes >= 1);
  GoldValues gold;
  for (int i = 0; i < ntimes; ++i) gold.stepIteration();

  ValidationResult result;
  const std::size_t n = arrays.size();
  double sumA = 0.0, sumB = 0.0, sumC = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sumA += std::abs(arrays.a[i] - gold.a);
    sumB += std::abs(arrays.b[i] - gold.b);
    sumC += std::abs(arrays.c[i] - gold.c);
  }
  result.errA = sumA / static_cast<double>(n) / std::abs(gold.a);
  result.errB = sumB / static_cast<double>(n) / std::abs(gold.b);
  result.errC = sumC / static_cast<double>(n) / std::abs(gold.c);
  result.errDot = std::abs(dotResult - gold.dot(n)) / std::abs(gold.dot(n));
  result.passed = result.errA < epsilon && result.errB < epsilon &&
                  result.errC < epsilon && result.errDot < epsilon;
  return result;
}

}  // namespace rebench::babelstream
