// BabelStream data model: the five kernels, their canonical initial values
// and analytic validation — a faithful reimplementation of the benchmark
// of Deakin et al. used in §3.1.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rebench::babelstream {

/// Canonical BabelStream initialisation and scalar.
inline constexpr double kInitA = 0.1;
inline constexpr double kInitB = 0.2;
inline constexpr double kInitC = 0.0;
inline constexpr double kScalar = 0.4;

enum class Kernel { kCopy, kMul, kAdd, kTriad, kDot };

inline constexpr Kernel kAllKernels[] = {Kernel::kCopy, Kernel::kMul,
                                         Kernel::kAdd, Kernel::kTriad,
                                         Kernel::kDot};

std::string_view kernelName(Kernel k);

/// Bytes moved per element, per kernel (the figures BabelStream itself
/// uses to convert time to MBytes/sec).
double kernelBytesPerElement(Kernel k);

/// Double-precision flops per element, per kernel (for roofline modelling).
double kernelFlopsPerElement(Kernel k);

/// The three benchmark arrays.
struct StreamArrays {
  std::vector<double> a, b, c;

  explicit StreamArrays(std::size_t n)
      : a(n, kInitA), b(n, kInitB), c(n, kInitC) {}

  std::size_t size() const { return a.size(); }
};

/// Expected array values after `ntimes` iterations of the BabelStream
/// sequence copy; mul; add; triad (the dot result follows from these).
struct GoldValues {
  double a = kInitA;
  double b = kInitB;
  double c = kInitC;

  void stepIteration();            // one copy+mul+add+triad round
  double dot(std::size_t n) const { return a * b * static_cast<double>(n); }
};

/// Relative-error validation identical in spirit to BabelStream's
/// check_solution; returns true when all arrays and the dot product are
/// within `epsilon`.
struct ValidationResult {
  bool passed = false;
  double errA = 0.0, errB = 0.0, errC = 0.0, errDot = 0.0;
};

ValidationResult validate(const StreamArrays& arrays, int ntimes,
                          double dotResult, double epsilon = 1.0e-8);

}  // namespace rebench::babelstream
