#include "babelstream/run.hpp"

#include <algorithm>
#include <limits>

#include "core/util/error.hpp"
#include "core/util/strings.hpp"
#include "core/util/timer.hpp"
#include "core/util/units.hpp"
#include "sim/roofline.hpp"

namespace rebench::babelstream {

namespace {

KernelTiming summarize(const std::vector<double>& samples, Kernel kernel,
                       std::size_t n) {
  KernelTiming t;
  t.minSeconds = *std::min_element(samples.begin(), samples.end());
  t.maxSeconds = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) sum += s;
  t.avgSeconds = sum / static_cast<double>(samples.size());
  const double bytes = kernelBytesPerElement(kernel) * static_cast<double>(n);
  t.mbytesPerSec = bytes / t.minSeconds / 1.0e6;
  return t;
}

}  // namespace

double StreamResult::triadGBs() const {
  auto it = timings.find(Kernel::kTriad);
  REBENCH_REQUIRE(it != timings.end());
  return it->second.mbytesPerSec / 1.0e3;
}

StreamResult runNative(std::string_view backendId, std::size_t arraySize,
                       int ntimes) {
  REBENCH_REQUIRE(ntimes >= 1 && arraySize >= 2);
  auto backend = makeNativeBackend(backendId);
  if (!backend) {
    throw NotFoundError("no native backend '" + std::string(backendId) +
                        "' on this host");
  }

  StreamArrays arrays(arraySize);
  std::map<Kernel, std::vector<double>> samples;
  double dotResult = 0.0;
  WallTimer timer;
  for (int iter = 0; iter < ntimes; ++iter) {
    timer.reset();
    backend->copy(arrays);
    samples[Kernel::kCopy].push_back(timer.elapsed());

    timer.reset();
    backend->mul(arrays);
    samples[Kernel::kMul].push_back(timer.elapsed());

    timer.reset();
    backend->add(arrays);
    samples[Kernel::kAdd].push_back(timer.elapsed());

    timer.reset();
    backend->triad(arrays);
    samples[Kernel::kTriad].push_back(timer.elapsed());

    timer.reset();
    dotResult = backend->dot(arrays);
    samples[Kernel::kDot].push_back(timer.elapsed());
  }

  StreamResult result;
  result.model = std::string(backendId);
  result.platform = "native";
  result.arraySize = arraySize;
  result.ntimes = ntimes;
  for (Kernel k : kAllKernels) {
    result.timings[k] = summarize(samples.at(k), k, arraySize);
    result.totalSeconds +=
        result.timings[k].avgSeconds * static_cast<double>(ntimes);
  }
  result.validated = validate(arrays, ntimes, dotResult).passed;
  return result;
}

std::string unsupportedReason(std::string_view modelId,
                              const MachineModel& machine) {
  const ModelSupport support = modelById(modelId).supportOn(machine);
  return support.supported ? std::string{} : support.reason;
}

std::optional<StreamResult> runModeled(std::string_view modelId,
                                       const MachineModel& machine,
                                       std::size_t arraySize, int ntimes,
                                       std::size_t checkSize,
                                       const std::string& noiseSalt) {
  const ProgrammingModel& model = modelById(modelId);
  const ModelSupport support = model.supportOn(machine);
  if (!support.supported) return std::nullopt;

  // Correctness: execute the real kernels (the model's native backend
  // where one exists, else the serial reference) at a reduced size.
  bool validated = false;
  {
    auto backend = makeNativeBackend(modelId);
    if (!backend) backend = makeNativeBackend("serial");
    StreamArrays arrays(checkSize);
    double dotResult = 0.0;
    for (int iter = 0; iter < ntimes; ++iter) {
      backend->iteration(arrays);
      dotResult = backend->dot(arrays);
    }
    validated = validate(arrays, ntimes, dotResult).passed;
  }

  // Timing: roofline at the requested (paper-scale) array size.
  StreamResult result;
  result.model = model.id;
  result.platform = machine.id;
  result.arraySize = arraySize;
  result.ntimes = ntimes;
  result.validated = validated;
  for (Kernel k : kAllKernels) {
    KernelProfile profile;
    const double n = static_cast<double>(arraySize);
    const double bytes = kernelBytesPerElement(k) * n;
    profile.bytesWritten = (k == Kernel::kDot) ? 0.0 : 8.0 * n;
    profile.bytesRead = bytes - profile.bytesWritten;
    profile.flops = kernelFlopsPerElement(k) * n;

    std::vector<double> samples;
    samples.reserve(ntimes);
    for (int iter = 0; iter < ntimes; ++iter) {
      const std::string key = "babelstream:" + machine.id + ":" + model.id +
                              ":" + std::string(kernelName(k)) + ":" +
                              std::to_string(iter) + noiseSalt;
      samples.push_back(
          simulateKernel(machine, profile, support.efficiency, key).seconds);
    }
    result.timings[k] = summarize(samples, k, arraySize);
    result.totalSeconds +=
        result.timings[k].avgSeconds * static_cast<double>(ntimes);
  }
  return result;
}

std::string formatOutput(const StreamResult& result) {
  const double arrayBytes = 8.0 * static_cast<double>(result.arraySize);
  std::string out;
  out += "BabelStream\n";
  out += "Version: 4.0\n";
  out += "Implementation: " + result.model + "\n";
  out += "Running kernels " + std::to_string(result.ntimes) + " times\n";
  out += "Precision: double\n";
  out += "Array size: " + formatMegabytes(arrayBytes) + " (=" +
         str::fixed(arrayBytes / 1.0e9, 1) + " GB)\n";
  out += "Total size: " + formatMegabytes(3.0 * arrayBytes) + " (=" +
         str::fixed(3.0 * arrayBytes / 1.0e9, 1) + " GB)\n";
  out += str::padRight("Function", 12) + str::padLeft("MBytes/sec", 12) +
         str::padLeft("Min (sec)", 12) + str::padLeft("Max", 12) +
         str::padLeft("Average", 12) + "\n";
  for (Kernel k : kAllKernels) {
    const KernelTiming& t = result.timings.at(k);
    out += str::padRight(std::string(kernelName(k)), 12) +
           str::padLeft(str::fixed(t.mbytesPerSec, 3), 12) +
           str::padLeft(str::fixed(t.minSeconds, 5), 12) +
           str::padLeft(str::fixed(t.maxSeconds, 5), 12) +
           str::padLeft(str::fixed(t.avgSeconds, 5), 12) + "\n";
  }
  out += std::string("Validation: ") +
         (result.validated ? "PASSED" : "FAILED") + "\n";
  return out;
}

std::size_t paperArraySize(const MachineModel& machine) {
  // §3.1: 2^25 doubles (268 MB/array) comfortably exceeds the ~27-77 MB
  // L3 of the Cascade Lake/ThunderX2/V100 parts, but the 256 MB-per-
  // socket L3 of the Rome/Milan EPYCs demands the 2^29 (4.3 GB/array)
  // configuration the paper uses on paderborn-milan.
  const bool hugeLlc = machine.llcMegabytes >= 256.0;
  return std::size_t{1} << (hugeLlc ? 29 : 25);
}

}  // namespace rebench::babelstream
