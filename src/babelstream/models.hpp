// The programming-model × platform support matrix behind Figure 2.
//
// Each ProgrammingModel row knows, per machine model: whether the
// combination works at all (the paper's white "*" boxes come from real
// incompatibilities — CUDA on CPUs, Intel TBB on ThunderX2, ...), which
// compiler builds it there, and how efficiently it drives the memory
// system when it does work.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/machine.hpp"
#include "sim/roofline.hpp"

namespace rebench::babelstream {

struct ModelSupport {
  bool supported = false;
  std::string reason;        // why not, when unsupported
  std::string compilerLabel;  // "%gcc@9.2.0", "%nvcc@11.2", ...
  ExecutionEfficiency efficiency;
};

struct ProgrammingModel {
  std::string id;           // "omp", "cuda", ...
  std::string displayName;  // "OpenMP", "CUDA", ...
  /// Figure-2-style row label including backend/compiler decorations,
  /// e.g. "kokkos+omp" ("+" marks the backend per the paper's legend).
  std::string rowLabel;

  ModelSupport supportOn(const MachineModel& machine) const;
};

/// The rows of Figure 2, in display order.
const std::vector<ProgrammingModel>& figure2Models();

/// Lookup by id; throws NotFoundError.
const ProgrammingModel& modelById(std::string_view id);

}  // namespace rebench::babelstream
