# Empty compiler generated dependencies file for table2_hpcg.
# This may be replaced when dependencies are built.
