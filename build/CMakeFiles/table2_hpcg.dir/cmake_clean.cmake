file(REMOVE_RECURSE
  "CMakeFiles/table2_hpcg.dir/bench/table2_hpcg.cpp.o"
  "CMakeFiles/table2_hpcg.dir/bench/table2_hpcg.cpp.o.d"
  "bench/table2_hpcg"
  "bench/table2_hpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
