file(REMOVE_RECURSE
  "CMakeFiles/ablation_regression.dir/bench/ablation_regression.cpp.o"
  "CMakeFiles/ablation_regression.dir/bench/ablation_regression.cpp.o.d"
  "bench/ablation_regression"
  "bench/ablation_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
