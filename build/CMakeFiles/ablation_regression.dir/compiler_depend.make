# Empty compiler generated dependencies file for ablation_regression.
# This may be replaced when dependencies are built.
