# Empty dependencies file for ablation_buildpath.
# This may be replaced when dependencies are built.
