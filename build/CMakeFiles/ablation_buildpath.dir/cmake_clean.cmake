file(REMOVE_RECURSE
  "CMakeFiles/ablation_buildpath.dir/bench/ablation_buildpath.cpp.o"
  "CMakeFiles/ablation_buildpath.dir/bench/ablation_buildpath.cpp.o.d"
  "bench/ablation_buildpath"
  "bench/ablation_buildpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buildpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
