file(REMOVE_RECURSE
  "CMakeFiles/scaling_hpgmg.dir/bench/scaling_hpgmg.cpp.o"
  "CMakeFiles/scaling_hpgmg.dir/bench/scaling_hpgmg.cpp.o.d"
  "bench/scaling_hpgmg"
  "bench/scaling_hpgmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_hpgmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
