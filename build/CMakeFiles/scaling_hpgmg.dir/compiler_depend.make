# Empty compiler generated dependencies file for scaling_hpgmg.
# This may be replaced when dependencies are built.
