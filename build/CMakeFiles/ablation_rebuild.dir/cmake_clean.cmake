file(REMOVE_RECURSE
  "CMakeFiles/ablation_rebuild.dir/bench/ablation_rebuild.cpp.o"
  "CMakeFiles/ablation_rebuild.dir/bench/ablation_rebuild.cpp.o.d"
  "bench/ablation_rebuild"
  "bench/ablation_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
