# Empty compiler generated dependencies file for ablation_rebuild.
# This may be replaced when dependencies are built.
