file(REMOVE_RECURSE
  "CMakeFiles/table4_hpgmg.dir/bench/table4_hpgmg.cpp.o"
  "CMakeFiles/table4_hpgmg.dir/bench/table4_hpgmg.cpp.o.d"
  "bench/table4_hpgmg"
  "bench/table4_hpgmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hpgmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
