# Empty compiler generated dependencies file for table4_hpgmg.
# This may be replaced when dependencies are built.
