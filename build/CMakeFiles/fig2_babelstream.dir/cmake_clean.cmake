file(REMOVE_RECURSE
  "CMakeFiles/fig2_babelstream.dir/bench/fig2_babelstream.cpp.o"
  "CMakeFiles/fig2_babelstream.dir/bench/fig2_babelstream.cpp.o.d"
  "bench/fig2_babelstream"
  "bench/fig2_babelstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_babelstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
