# Empty dependencies file for fig2_babelstream.
# This may be replaced when dependencies are built.
