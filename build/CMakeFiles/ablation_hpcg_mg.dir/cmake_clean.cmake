file(REMOVE_RECURSE
  "CMakeFiles/ablation_hpcg_mg.dir/bench/ablation_hpcg_mg.cpp.o"
  "CMakeFiles/ablation_hpcg_mg.dir/bench/ablation_hpcg_mg.cpp.o.d"
  "bench/ablation_hpcg_mg"
  "bench/ablation_hpcg_mg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hpcg_mg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
