# Empty dependencies file for ablation_hpcg_mg.
# This may be replaced when dependencies are built.
