file(REMOVE_RECURSE
  "CMakeFiles/ablation_postproc.dir/bench/ablation_postproc.cpp.o"
  "CMakeFiles/ablation_postproc.dir/bench/ablation_postproc.cpp.o.d"
  "bench/ablation_postproc"
  "bench/ablation_postproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
