# Empty dependencies file for ablation_postproc.
# This may be replaced when dependencies are built.
