file(REMOVE_RECURSE
  "CMakeFiles/ablation_hygiene.dir/bench/ablation_hygiene.cpp.o"
  "CMakeFiles/ablation_hygiene.dir/bench/ablation_hygiene.cpp.o.d"
  "bench/ablation_hygiene"
  "bench/ablation_hygiene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hygiene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
