# Empty compiler generated dependencies file for ablation_hygiene.
# This may be replaced when dependencies are built.
