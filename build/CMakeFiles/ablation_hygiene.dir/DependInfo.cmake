
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_hygiene.cpp" "CMakeFiles/ablation_hygiene.dir/bench/ablation_hygiene.cpp.o" "gcc" "CMakeFiles/ablation_hygiene.dir/bench/ablation_hygiene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/babelstream/CMakeFiles/rebench_babelstream.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcg/CMakeFiles/rebench_hpcg.dir/DependInfo.cmake"
  "/root/repo/build/src/hpgmg/CMakeFiles/rebench_hpgmg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
