# Empty compiler generated dependencies file for table3_concretize.
# This may be replaced when dependencies are built.
