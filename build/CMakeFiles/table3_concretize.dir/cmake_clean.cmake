file(REMOVE_RECURSE
  "CMakeFiles/table3_concretize.dir/bench/table3_concretize.cpp.o"
  "CMakeFiles/table3_concretize.dir/bench/table3_concretize.cpp.o.d"
  "bench/table3_concretize"
  "bench/table3_concretize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_concretize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
