file(REMOVE_RECURSE
  "librebench_cli_args.a"
)
