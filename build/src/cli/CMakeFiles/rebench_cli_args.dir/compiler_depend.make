# Empty compiler generated dependencies file for rebench_cli_args.
# This may be replaced when dependencies are built.
