file(REMOVE_RECURSE
  "CMakeFiles/rebench_cli_args.dir/args.cpp.o"
  "CMakeFiles/rebench_cli_args.dir/args.cpp.o.d"
  "librebench_cli_args.a"
  "librebench_cli_args.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_cli_args.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
