file(REMOVE_RECURSE
  "CMakeFiles/rebench.dir/main.cpp.o"
  "CMakeFiles/rebench.dir/main.cpp.o.d"
  "rebench"
  "rebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
