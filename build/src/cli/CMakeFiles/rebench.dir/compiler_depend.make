# Empty compiler generated dependencies file for rebench.
# This may be replaced when dependencies are built.
