
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/babelstream/backends.cpp" "src/babelstream/CMakeFiles/rebench_babelstream.dir/backends.cpp.o" "gcc" "src/babelstream/CMakeFiles/rebench_babelstream.dir/backends.cpp.o.d"
  "/root/repo/src/babelstream/models.cpp" "src/babelstream/CMakeFiles/rebench_babelstream.dir/models.cpp.o" "gcc" "src/babelstream/CMakeFiles/rebench_babelstream.dir/models.cpp.o.d"
  "/root/repo/src/babelstream/run.cpp" "src/babelstream/CMakeFiles/rebench_babelstream.dir/run.cpp.o" "gcc" "src/babelstream/CMakeFiles/rebench_babelstream.dir/run.cpp.o.d"
  "/root/repo/src/babelstream/stream.cpp" "src/babelstream/CMakeFiles/rebench_babelstream.dir/stream.cpp.o" "gcc" "src/babelstream/CMakeFiles/rebench_babelstream.dir/stream.cpp.o.d"
  "/root/repo/src/babelstream/testcase.cpp" "src/babelstream/CMakeFiles/rebench_babelstream.dir/testcase.cpp.o" "gcc" "src/babelstream/CMakeFiles/rebench_babelstream.dir/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
