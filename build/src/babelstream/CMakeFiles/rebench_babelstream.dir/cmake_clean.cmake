file(REMOVE_RECURSE
  "CMakeFiles/rebench_babelstream.dir/backends.cpp.o"
  "CMakeFiles/rebench_babelstream.dir/backends.cpp.o.d"
  "CMakeFiles/rebench_babelstream.dir/models.cpp.o"
  "CMakeFiles/rebench_babelstream.dir/models.cpp.o.d"
  "CMakeFiles/rebench_babelstream.dir/run.cpp.o"
  "CMakeFiles/rebench_babelstream.dir/run.cpp.o.d"
  "CMakeFiles/rebench_babelstream.dir/stream.cpp.o"
  "CMakeFiles/rebench_babelstream.dir/stream.cpp.o.d"
  "CMakeFiles/rebench_babelstream.dir/testcase.cpp.o"
  "CMakeFiles/rebench_babelstream.dir/testcase.cpp.o.d"
  "librebench_babelstream.a"
  "librebench_babelstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_babelstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
