# Empty compiler generated dependencies file for rebench_babelstream.
# This may be replaced when dependencies are built.
