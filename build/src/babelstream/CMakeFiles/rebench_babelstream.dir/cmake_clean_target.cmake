file(REMOVE_RECURSE
  "librebench_babelstream.a"
)
