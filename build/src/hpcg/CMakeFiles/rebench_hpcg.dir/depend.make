# Empty dependencies file for rebench_hpcg.
# This may be replaced when dependencies are built.
