file(REMOVE_RECURSE
  "CMakeFiles/rebench_hpcg.dir/cg.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/cg.cpp.o.d"
  "CMakeFiles/rebench_hpcg.dir/driver.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/driver.cpp.o.d"
  "CMakeFiles/rebench_hpcg.dir/mg_preconditioner.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/mg_preconditioner.cpp.o.d"
  "CMakeFiles/rebench_hpcg.dir/operators.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/operators.cpp.o.d"
  "CMakeFiles/rebench_hpcg.dir/problem.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/problem.cpp.o.d"
  "CMakeFiles/rebench_hpcg.dir/testcase.cpp.o"
  "CMakeFiles/rebench_hpcg.dir/testcase.cpp.o.d"
  "librebench_hpcg.a"
  "librebench_hpcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_hpcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
