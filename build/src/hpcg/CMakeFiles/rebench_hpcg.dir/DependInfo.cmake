
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpcg/cg.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/cg.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/cg.cpp.o.d"
  "/root/repo/src/hpcg/driver.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/driver.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/driver.cpp.o.d"
  "/root/repo/src/hpcg/mg_preconditioner.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/mg_preconditioner.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/mg_preconditioner.cpp.o.d"
  "/root/repo/src/hpcg/operators.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/operators.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/operators.cpp.o.d"
  "/root/repo/src/hpcg/problem.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/problem.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/problem.cpp.o.d"
  "/root/repo/src/hpcg/testcase.cpp" "src/hpcg/CMakeFiles/rebench_hpcg.dir/testcase.cpp.o" "gcc" "src/hpcg/CMakeFiles/rebench_hpcg.dir/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
