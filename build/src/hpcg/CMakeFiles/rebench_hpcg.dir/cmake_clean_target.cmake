file(REMOVE_RECURSE
  "librebench_hpcg.a"
)
