# Empty compiler generated dependencies file for rebench_suite.
# This may be replaced when dependencies are built.
