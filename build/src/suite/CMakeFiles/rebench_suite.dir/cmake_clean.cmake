file(REMOVE_RECURSE
  "CMakeFiles/rebench_suite.dir/builtin_suite.cpp.o"
  "CMakeFiles/rebench_suite.dir/builtin_suite.cpp.o.d"
  "librebench_suite.a"
  "librebench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
