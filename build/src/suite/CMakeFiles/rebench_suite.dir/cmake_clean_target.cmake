file(REMOVE_RECURSE
  "librebench_suite.a"
)
