file(REMOVE_RECURSE
  "librebench_core.a"
)
