# Empty compiler generated dependencies file for rebench_core.
# This may be replaced when dependencies are built.
