
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/concretizer/concretizer.cpp" "src/core/CMakeFiles/rebench_core.dir/concretizer/concretizer.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/concretizer/concretizer.cpp.o.d"
  "/root/repo/src/core/concretizer/environment.cpp" "src/core/CMakeFiles/rebench_core.dir/concretizer/environment.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/concretizer/environment.cpp.o.d"
  "/root/repo/src/core/framework/perflog.cpp" "src/core/CMakeFiles/rebench_core.dir/framework/perflog.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/framework/perflog.cpp.o.d"
  "/root/repo/src/core/framework/pipeline.cpp" "src/core/CMakeFiles/rebench_core.dir/framework/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/framework/pipeline.cpp.o.d"
  "/root/repo/src/core/framework/regression_test.cpp" "src/core/CMakeFiles/rebench_core.dir/framework/regression_test.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/framework/regression_test.cpp.o.d"
  "/root/repo/src/core/framework/suite.cpp" "src/core/CMakeFiles/rebench_core.dir/framework/suite.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/framework/suite.cpp.o.d"
  "/root/repo/src/core/framework/telemetry.cpp" "src/core/CMakeFiles/rebench_core.dir/framework/telemetry.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/framework/telemetry.cpp.o.d"
  "/root/repo/src/core/pkg/build_plan.cpp" "src/core/CMakeFiles/rebench_core.dir/pkg/build_plan.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/pkg/build_plan.cpp.o.d"
  "/root/repo/src/core/pkg/builtin_repo.cpp" "src/core/CMakeFiles/rebench_core.dir/pkg/builtin_repo.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/pkg/builtin_repo.cpp.o.d"
  "/root/repo/src/core/pkg/recipe.cpp" "src/core/CMakeFiles/rebench_core.dir/pkg/recipe.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/pkg/recipe.cpp.o.d"
  "/root/repo/src/core/postproc/dataframe.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/dataframe.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/dataframe.cpp.o.d"
  "/root/repo/src/core/postproc/efficiency.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/efficiency.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/efficiency.cpp.o.d"
  "/root/repo/src/core/postproc/hygiene.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/hygiene.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/hygiene.cpp.o.d"
  "/root/repo/src/core/postproc/perflog_reader.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/perflog_reader.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/perflog_reader.cpp.o.d"
  "/root/repo/src/core/postproc/plot.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/plot.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/plot.cpp.o.d"
  "/root/repo/src/core/postproc/regression.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/regression.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/regression.cpp.o.d"
  "/root/repo/src/core/postproc/stats.cpp" "src/core/CMakeFiles/rebench_core.dir/postproc/stats.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/postproc/stats.cpp.o.d"
  "/root/repo/src/core/sched/launcher.cpp" "src/core/CMakeFiles/rebench_core.dir/sched/launcher.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/sched/launcher.cpp.o.d"
  "/root/repo/src/core/sched/scheduler.cpp" "src/core/CMakeFiles/rebench_core.dir/sched/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/core/spec/spec.cpp" "src/core/CMakeFiles/rebench_core.dir/spec/spec.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/spec/spec.cpp.o.d"
  "/root/repo/src/core/sysconfig/builtin_systems.cpp" "src/core/CMakeFiles/rebench_core.dir/sysconfig/builtin_systems.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/sysconfig/builtin_systems.cpp.o.d"
  "/root/repo/src/core/sysconfig/system_config.cpp" "src/core/CMakeFiles/rebench_core.dir/sysconfig/system_config.cpp.o" "gcc" "src/core/CMakeFiles/rebench_core.dir/sysconfig/system_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
