file(REMOVE_RECURSE
  "CMakeFiles/rebench_util.dir/util/hash.cpp.o"
  "CMakeFiles/rebench_util.dir/util/hash.cpp.o.d"
  "CMakeFiles/rebench_util.dir/util/rng.cpp.o"
  "CMakeFiles/rebench_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rebench_util.dir/util/strings.cpp.o"
  "CMakeFiles/rebench_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/rebench_util.dir/util/table.cpp.o"
  "CMakeFiles/rebench_util.dir/util/table.cpp.o.d"
  "CMakeFiles/rebench_util.dir/util/units.cpp.o"
  "CMakeFiles/rebench_util.dir/util/units.cpp.o.d"
  "CMakeFiles/rebench_util.dir/util/version.cpp.o"
  "CMakeFiles/rebench_util.dir/util/version.cpp.o.d"
  "librebench_util.a"
  "librebench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
