file(REMOVE_RECURSE
  "librebench_util.a"
)
