
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/util/hash.cpp" "src/core/CMakeFiles/rebench_util.dir/util/hash.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/hash.cpp.o.d"
  "/root/repo/src/core/util/rng.cpp" "src/core/CMakeFiles/rebench_util.dir/util/rng.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/rng.cpp.o.d"
  "/root/repo/src/core/util/strings.cpp" "src/core/CMakeFiles/rebench_util.dir/util/strings.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/strings.cpp.o.d"
  "/root/repo/src/core/util/table.cpp" "src/core/CMakeFiles/rebench_util.dir/util/table.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/table.cpp.o.d"
  "/root/repo/src/core/util/units.cpp" "src/core/CMakeFiles/rebench_util.dir/util/units.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/units.cpp.o.d"
  "/root/repo/src/core/util/version.cpp" "src/core/CMakeFiles/rebench_util.dir/util/version.cpp.o" "gcc" "src/core/CMakeFiles/rebench_util.dir/util/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
