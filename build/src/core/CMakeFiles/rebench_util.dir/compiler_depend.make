# Empty compiler generated dependencies file for rebench_util.
# This may be replaced when dependencies are built.
