# Empty compiler generated dependencies file for rebench_osu.
# This may be replaced when dependencies are built.
