file(REMOVE_RECURSE
  "CMakeFiles/rebench_osu.dir/osu.cpp.o"
  "CMakeFiles/rebench_osu.dir/osu.cpp.o.d"
  "CMakeFiles/rebench_osu.dir/testcase.cpp.o"
  "CMakeFiles/rebench_osu.dir/testcase.cpp.o.d"
  "librebench_osu.a"
  "librebench_osu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
