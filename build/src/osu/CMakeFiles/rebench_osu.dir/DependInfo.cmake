
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osu/osu.cpp" "src/osu/CMakeFiles/rebench_osu.dir/osu.cpp.o" "gcc" "src/osu/CMakeFiles/rebench_osu.dir/osu.cpp.o.d"
  "/root/repo/src/osu/testcase.cpp" "src/osu/CMakeFiles/rebench_osu.dir/testcase.cpp.o" "gcc" "src/osu/CMakeFiles/rebench_osu.dir/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
