file(REMOVE_RECURSE
  "librebench_osu.a"
)
