file(REMOVE_RECURSE
  "CMakeFiles/rebench_parallel.dir/minimpi.cpp.o"
  "CMakeFiles/rebench_parallel.dir/minimpi.cpp.o.d"
  "CMakeFiles/rebench_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/rebench_parallel.dir/thread_pool.cpp.o.d"
  "librebench_parallel.a"
  "librebench_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
