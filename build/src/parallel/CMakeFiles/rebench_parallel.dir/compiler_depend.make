# Empty compiler generated dependencies file for rebench_parallel.
# This may be replaced when dependencies are built.
