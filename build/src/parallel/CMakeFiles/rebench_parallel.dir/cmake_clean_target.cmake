file(REMOVE_RECURSE
  "librebench_parallel.a"
)
