# Empty dependencies file for rebench_sim.
# This may be replaced when dependencies are built.
