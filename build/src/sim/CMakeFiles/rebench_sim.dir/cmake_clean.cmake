file(REMOVE_RECURSE
  "CMakeFiles/rebench_sim.dir/machine.cpp.o"
  "CMakeFiles/rebench_sim.dir/machine.cpp.o.d"
  "CMakeFiles/rebench_sim.dir/roofline.cpp.o"
  "CMakeFiles/rebench_sim.dir/roofline.cpp.o.d"
  "librebench_sim.a"
  "librebench_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
