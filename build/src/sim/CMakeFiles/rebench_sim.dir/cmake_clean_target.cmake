file(REMOVE_RECURSE
  "librebench_sim.a"
)
