file(REMOVE_RECURSE
  "librebench_hpgmg.a"
)
