file(REMOVE_RECURSE
  "CMakeFiles/rebench_hpgmg.dir/driver.cpp.o"
  "CMakeFiles/rebench_hpgmg.dir/driver.cpp.o.d"
  "CMakeFiles/rebench_hpgmg.dir/fv.cpp.o"
  "CMakeFiles/rebench_hpgmg.dir/fv.cpp.o.d"
  "CMakeFiles/rebench_hpgmg.dir/mg.cpp.o"
  "CMakeFiles/rebench_hpgmg.dir/mg.cpp.o.d"
  "CMakeFiles/rebench_hpgmg.dir/testcase.cpp.o"
  "CMakeFiles/rebench_hpgmg.dir/testcase.cpp.o.d"
  "librebench_hpgmg.a"
  "librebench_hpgmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebench_hpgmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
