
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpgmg/driver.cpp" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/driver.cpp.o" "gcc" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/driver.cpp.o.d"
  "/root/repo/src/hpgmg/fv.cpp" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/fv.cpp.o" "gcc" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/fv.cpp.o.d"
  "/root/repo/src/hpgmg/mg.cpp" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/mg.cpp.o" "gcc" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/mg.cpp.o.d"
  "/root/repo/src/hpgmg/testcase.cpp" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/testcase.cpp.o" "gcc" "src/hpgmg/CMakeFiles/rebench_hpgmg.dir/testcase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
