# Empty dependencies file for rebench_hpgmg.
# This may be replaced when dependencies are built.
