file(REMOVE_RECURSE
  "CMakeFiles/test_cg.dir/hpcg/test_cg.cpp.o"
  "CMakeFiles/test_cg.dir/hpcg/test_cg.cpp.o.d"
  "test_cg"
  "test_cg.pdb"
  "test_cg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
