file(REMOVE_RECURSE
  "CMakeFiles/test_dataframe.dir/core/test_dataframe.cpp.o"
  "CMakeFiles/test_dataframe.dir/core/test_dataframe.cpp.o.d"
  "test_dataframe"
  "test_dataframe.pdb"
  "test_dataframe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
