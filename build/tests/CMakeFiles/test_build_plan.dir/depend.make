# Empty dependencies file for test_build_plan.
# This may be replaced when dependencies are built.
