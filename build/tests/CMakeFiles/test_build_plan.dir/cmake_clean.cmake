file(REMOVE_RECURSE
  "CMakeFiles/test_build_plan.dir/core/test_build_plan.cpp.o"
  "CMakeFiles/test_build_plan.dir/core/test_build_plan.cpp.o.d"
  "test_build_plan"
  "test_build_plan.pdb"
  "test_build_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_build_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
