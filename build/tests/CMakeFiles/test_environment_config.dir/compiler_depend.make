# Empty compiler generated dependencies file for test_environment_config.
# This may be replaced when dependencies are built.
