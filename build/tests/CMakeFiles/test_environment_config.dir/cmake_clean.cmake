file(REMOVE_RECURSE
  "CMakeFiles/test_environment_config.dir/core/test_environment_config.cpp.o"
  "CMakeFiles/test_environment_config.dir/core/test_environment_config.cpp.o.d"
  "test_environment_config"
  "test_environment_config.pdb"
  "test_environment_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_environment_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
