
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_plot.cpp" "tests/CMakeFiles/test_plot.dir/core/test_plot.cpp.o" "gcc" "tests/CMakeFiles/test_plot.dir/core/test_plot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rebench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/rebench_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rebench_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/babelstream/CMakeFiles/rebench_babelstream.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcg/CMakeFiles/rebench_hpcg.dir/DependInfo.cmake"
  "/root/repo/build/src/hpgmg/CMakeFiles/rebench_hpgmg.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/rebench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/osu/CMakeFiles/rebench_osu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rebench_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
