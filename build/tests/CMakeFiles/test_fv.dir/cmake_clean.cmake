file(REMOVE_RECURSE
  "CMakeFiles/test_fv.dir/hpgmg/test_fv.cpp.o"
  "CMakeFiles/test_fv.dir/hpgmg/test_fv.cpp.o.d"
  "test_fv"
  "test_fv.pdb"
  "test_fv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
