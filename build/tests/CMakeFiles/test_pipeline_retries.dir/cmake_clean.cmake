file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline_retries.dir/core/test_pipeline_retries.cpp.o"
  "CMakeFiles/test_pipeline_retries.dir/core/test_pipeline_retries.cpp.o.d"
  "test_pipeline_retries"
  "test_pipeline_retries.pdb"
  "test_pipeline_retries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
