# Empty compiler generated dependencies file for test_pipeline_retries.
# This may be replaced when dependencies are built.
