# Empty compiler generated dependencies file for test_perflog.
# This may be replaced when dependencies are built.
