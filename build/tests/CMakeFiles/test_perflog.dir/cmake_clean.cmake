file(REMOVE_RECURSE
  "CMakeFiles/test_perflog.dir/core/test_perflog.cpp.o"
  "CMakeFiles/test_perflog.dir/core/test_perflog.cpp.o.d"
  "test_perflog"
  "test_perflog.pdb"
  "test_perflog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perflog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
