file(REMOVE_RECURSE
  "CMakeFiles/test_recipe.dir/core/test_recipe.cpp.o"
  "CMakeFiles/test_recipe.dir/core/test_recipe.cpp.o.d"
  "test_recipe"
  "test_recipe.pdb"
  "test_recipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
