# Empty dependencies file for test_sysconfig.
# This may be replaced when dependencies are built.
