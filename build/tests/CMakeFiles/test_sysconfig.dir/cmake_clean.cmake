file(REMOVE_RECURSE
  "CMakeFiles/test_sysconfig.dir/core/test_sysconfig.cpp.o"
  "CMakeFiles/test_sysconfig.dir/core/test_sysconfig.cpp.o.d"
  "test_sysconfig"
  "test_sysconfig.pdb"
  "test_sysconfig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sysconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
