# Empty compiler generated dependencies file for test_efficiency.
# This may be replaced when dependencies are built.
