file(REMOVE_RECURSE
  "CMakeFiles/test_jobscript.dir/core/test_jobscript.cpp.o"
  "CMakeFiles/test_jobscript.dir/core/test_jobscript.cpp.o.d"
  "test_jobscript"
  "test_jobscript.pdb"
  "test_jobscript[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jobscript.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
