# Empty dependencies file for test_jobscript.
# This may be replaced when dependencies are built.
