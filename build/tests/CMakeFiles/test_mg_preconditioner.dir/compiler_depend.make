# Empty compiler generated dependencies file for test_mg_preconditioner.
# This may be replaced when dependencies are built.
