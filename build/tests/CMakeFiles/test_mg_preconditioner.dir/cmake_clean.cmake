file(REMOVE_RECURSE
  "CMakeFiles/test_mg_preconditioner.dir/hpcg/test_mg_preconditioner.cpp.o"
  "CMakeFiles/test_mg_preconditioner.dir/hpcg/test_mg_preconditioner.cpp.o.d"
  "test_mg_preconditioner"
  "test_mg_preconditioner.pdb"
  "test_mg_preconditioner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mg_preconditioner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
