file(REMOVE_RECURSE
  "CMakeFiles/test_launcher.dir/core/test_launcher.cpp.o"
  "CMakeFiles/test_launcher.dir/core/test_launcher.cpp.o.d"
  "test_launcher"
  "test_launcher.pdb"
  "test_launcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_launcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
