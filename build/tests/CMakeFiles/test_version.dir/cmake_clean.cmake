file(REMOVE_RECURSE
  "CMakeFiles/test_version.dir/core/test_version.cpp.o"
  "CMakeFiles/test_version.dir/core/test_version.cpp.o.d"
  "test_version"
  "test_version.pdb"
  "test_version[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
