# Empty dependencies file for calibrate_hpgmg.
# This may be replaced when dependencies are built.
