file(REMOVE_RECURSE
  "CMakeFiles/calibrate_hpgmg.dir/calibrate_hpgmg.cpp.o"
  "CMakeFiles/calibrate_hpgmg.dir/calibrate_hpgmg.cpp.o.d"
  "calibrate_hpgmg"
  "calibrate_hpgmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_hpgmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
