file(REMOVE_RECURSE
  "CMakeFiles/ci_nightly.dir/ci_nightly.cpp.o"
  "CMakeFiles/ci_nightly.dir/ci_nightly.cpp.o.d"
  "ci_nightly"
  "ci_nightly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_nightly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
