# Empty compiler generated dependencies file for ci_nightly.
# This may be replaced when dependencies are built.
