# Empty dependencies file for hpcg_algorithm_study.
# This may be replaced when dependencies are built.
