file(REMOVE_RECURSE
  "CMakeFiles/hpcg_algorithm_study.dir/hpcg_algorithm_study.cpp.o"
  "CMakeFiles/hpcg_algorithm_study.dir/hpcg_algorithm_study.cpp.o.d"
  "hpcg_algorithm_study"
  "hpcg_algorithm_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcg_algorithm_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
