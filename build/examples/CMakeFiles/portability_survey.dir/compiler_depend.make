# Empty compiler generated dependencies file for portability_survey.
# This may be replaced when dependencies are built.
