file(REMOVE_RECURSE
  "CMakeFiles/portability_survey.dir/portability_survey.cpp.o"
  "CMakeFiles/portability_survey.dir/portability_survey.cpp.o.d"
  "portability_survey"
  "portability_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
