file(REMOVE_RECURSE
  "CMakeFiles/multi_system_survey.dir/multi_system_survey.cpp.o"
  "CMakeFiles/multi_system_survey.dir/multi_system_survey.cpp.o.d"
  "multi_system_survey"
  "multi_system_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_system_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
