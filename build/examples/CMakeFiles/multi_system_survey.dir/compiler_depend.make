# Empty compiler generated dependencies file for multi_system_survey.
# This may be replaced when dependencies are built.
