// Experiment E10 — Principle 6: programmatic post-processing.
//
// Generates perflogs the way the paper's framework does — one file per
// system, written on "isolated machines" — then assimilates them into a
// single DataFrame, filters, aggregates and renders plots.  Determinism is
// demonstrated by running the whole chain twice and comparing the CSV
// byte-for-byte (the property hand-curated spreadsheets cannot offer).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/plot.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

void BM_PerflogParse(benchmark::State& state) {
  PerfLogEntry entry;
  entry.system = "archer2";
  entry.testName = "BabelstreamTest_omp";
  entry.fomName = "Triad";
  entry.value = 123456.789;
  entry.unit = Unit::kMBperSec;
  entry.result = "pass";
  const std::string line = entry.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PerfLogEntry::parse(line));
  }
}
BENCHMARK(BM_PerflogParse);

void BM_DataFramePivot(benchmark::State& state) {
  DataFrame frame;
  DataFrame::StringColumn a, b;
  DataFrame::NumericColumn v;
  for (int i = 0; i < 1000; ++i) {
    a.push_back("row" + std::to_string(i % 10));
    b.push_back("col" + std::to_string(i % 7));
    v.push_back(i);
  }
  frame.addStrings("a", std::move(a));
  frame.addStrings("b", std::move(b));
  frame.addNumeric("v", std::move(v));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.pivot("a", "b", "v"));
  }
}
BENCHMARK(BM_DataFramePivot);

std::string runChainOnce(const std::string& tag) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  const auto dir = std::filesystem::temp_directory_path();
  std::vector<std::string> paths;

  // Each system writes its own perflog, as if generated in isolation.
  for (const char* target : {"archer2", "csd3", "noctua2"}) {
    const std::string path =
        (dir / ("rebench_" + tag + "_" + target + ".log")).string();
    std::remove(path.c_str());
    PerfLog log(path);
    for (const char* model : {"omp", "std-ranges", "tbb"}) {
      babelstream::BabelstreamTestOptions options;
      options.model = model;
      options.ntimes = 20;
      pipeline.runOne(babelstream::makeBabelstreamTest(options), target,
                      &log);
    }
    paths.push_back(path);
  }

  // Assimilate -> filter -> aggregate (the Figure 1 "Analysis" step).
  const DataFrame frame = assimilatePerflogs(paths);
  const DataFrame triad = frame.filterEquals("fom", "Triad")
                              .filterEquals("result", "pass");
  const std::array<std::string, 2> keys{"system", "test"};
  const DataFrame summary =
      triad.groupBy(keys, "value", Agg::kMean).sortBy("system");
  for (const std::string& path : paths) std::remove(path.c_str());
  return summary.toCsv();
}

void reproduceAblation() {
  const std::string first = runChainOnce("a");
  const std::string second = runChainOnce("b");

  std::cout << "\nAssimilated cross-system summary (Triad MB/s):\n"
            << first;
  std::cout << "\nDeterministic re-aggregation: the full perflog->frame->"
               "summary chain run twice produced "
            << (first == second ? "IDENTICAL" : "DIFFERENT")
            << " CSV output ("
            << first.size() << " bytes).\n";

  // And the plotting path.
  const DataFrame frame = DataFrame::fromCsv(first);
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    labels.push_back(frame.strings("system")[i] + "/" +
                     str::replaceAll(frame.strings("test")[i],
                                     "BabelstreamTest_", ""));
    values.push_back(frame.numeric("value")[i] / 1.0e3);
  }
  std::cout << "\n"
            << renderBarChart(labels, values,
                              {.title = "Triad by system and model",
                               .width = 40,
                               .valueSuffix = " GB/s"});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
