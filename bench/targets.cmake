# One bench binary per paper artefact (DESIGN.md's per-experiment index).
# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ contains nothing but the bench binaries — the whole
# directory is runnable as `for b in build/bench/*; do $b; done`.
function(rebench_add_bench source)
  get_filename_component(name ${source} NAME_WE)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${source})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    rebench_core rebench_parallel rebench_sim
    rebench_babelstream rebench_hpcg rebench_hpgmg
    benchmark::benchmark)
endfunction()

rebench_add_bench(fig2_babelstream.cpp)
rebench_add_bench(table2_hpcg.cpp)
rebench_add_bench(table3_concretize.cpp)
rebench_add_bench(table4_hpgmg.cpp)
rebench_add_bench(ablation_buildpath.cpp)
rebench_add_bench(ablation_rebuild.cpp)
rebench_add_bench(ablation_postproc.cpp)
rebench_add_bench(ablation_regression.cpp)
rebench_add_bench(scaling_hpgmg.cpp)
rebench_add_bench(ablation_hpcg_mg.cpp)
rebench_add_bench(ablation_hygiene.cpp)
rebench_add_bench(ablation_parallel.cpp)
rebench_add_bench(ablation_profile.cpp)
rebench_add_bench(ablation_history.cpp)
rebench_add_bench(ablation_infer.cpp)
rebench_add_bench(ablation_dataframe.cpp)
