// Experiment E5 — Table 3 of the paper.
//
// Concretizes the spec `hpgmg%gcc` against each system's software
// environment and prints the resulting compiler / Python / MPI versions —
// the exact content of Table 3.  The table is *derived* by the solver
// from the per-system external-package declarations, not hard-coded.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/concretizer/concretizer.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

// ---- microbenchmarks: concretizer + build-plan machinery ----------------

void BM_Concretize(benchmark::State& state) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  const Spec spec = Spec::parse("hpgmg%gcc");
  const SystemConfig& sys = systems.get("archer2");
  for (auto _ : state) {
    Concretizer concretizer(repo, sys.environment);
    benchmark::DoNotOptimize(concretizer.concretize(spec));
  }
}
BENCHMARK(BM_Concretize);

void BM_SpecParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Spec::parse("babelstream@4.0%gcc@9.2.0 +omp ^kokkos backend=openmp"));
  }
}
BENCHMARK(BM_SpecParse);

void BM_DagHash(benchmark::State& state) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  Concretizer concretizer(repo, systems.get("archer2").environment);
  const auto root = concretizer.concretize(Spec::parse("hpgmg%gcc")).root;
  for (auto _ : state) {
    benchmark::DoNotOptimize(root->dagHash());
  }
}
BENCHMARK(BM_DagHash);

// ---- the Table 3 reproduction ---------------------------------------------

void reproduceTable3() {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();

  struct Row {
    const char* system;
    const char* label;
  };
  constexpr Row kRows[] = {
      {"archer2", "ARCHER2"},
      {"cosma8", "COSMA8"},
      {"csd3", "CSD3"},
      {"isambard-macs", "Isambard-macs"},
  };

  AsciiTable table(
      "Table 3: Concretized build dependencies of the HPGMG-FV benchmark "
      "using the hpgmg%gcc spec");
  table.setHeader({"System", "gcc", "Python", "MPI library"});

  for (const Row& row : kRows) {
    Concretizer concretizer(repo, systems.get(row.system).environment);
    const auto result = concretizer.concretize(Spec::parse("hpgmg%gcc"));
    const ConcreteSpec& root = *result.root;

    const ConcreteSpec* python = root.find("python");
    std::string mpiCell = "?";
    for (const auto& [name, dep] : root.dependencies) {
      for (const std::string& provided :
           repo.get(dep->name).providedVirtuals()) {
        if (provided == "mpi") {
          mpiCell = dep->name + " " + dep->version.toString();
        }
      }
    }
    table.addRow({row.label, root.compilerVersion.toString(),
                  python != nullptr ? python->version.toString() : "?",
                  mpiCell});
  }
  std::cout << "\n" << table.render();

  // Archaeological reproducibility (§2.2): the full record of one system.
  Concretizer concretizer(repo, systems.get("archer2").environment);
  const auto result = concretizer.concretize(Spec::parse("hpgmg%gcc"));
  std::cout << "\nConcretized DAG on ARCHER2 (spack-spec style):\n"
            << result.root->tree();
  std::cout << "\nConcretization trace:\n";
  for (const std::string& line : result.trace) {
    std::cout << "  " << line << "\n";
  }
  const BuildPlan plan = makeBuildPlan(*result.root);
  std::cout << "\nReproducible build script (Principle 4):\n"
            << plan.renderScript();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceTable3();
  return 0;
}
