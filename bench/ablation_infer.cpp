// Experiment E17 (extension) — statistical inference engine.
//
// A synthetic noisy-FOM corpus (i.i.d. Gaussian, AR(1)-autocorrelated
// and warmup-drift series with known true means) is pushed through
// rebench::infer end to end: series estimation, the EDM changepoint
// scan, and a simulated adaptive run-length campaign driven by
// nextWindowGrowth.  The microbenchmarks quantify per-stage cost;
// reproduceAblation() checks the statistical claims DESIGN.md rests
// on — the 95% CI actually covers ~95% of i.i.d. trials, the
// ESS-corrected interval beats the naive s/sqrt(n) one on correlated
// series, the adaptive controller spends repeats where the noise is
// (and only there) while always delivering the requested precision,
// EDM pins a seeded shift without false-flagging flat noise, and the
// half-split guard catches warmup drift — then writes BENCH_infer.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/infer/changepoint_edm.hpp"
#include "core/infer/controller.hpp"
#include "core/infer/estimator.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"

namespace {

using namespace rebench;

constexpr int kTrials = 2000;
constexpr double kTrueMean = 100.0;

/// i.i.d. Gaussian samples about the true mean.
std::vector<double> iidSeries(Rng& rng, int n, double sigma) {
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(kTrueMean + sigma * rng.normal());
  return xs;
}

/// Stationary AR(1) about the true mean: marginal stddev `sigma`,
/// lag-1 autocorrelation `phi`.
std::vector<double> ar1Series(Rng& rng, int n, double sigma, double phi) {
  std::vector<double> xs;
  xs.reserve(n);
  double dev = sigma * rng.normal();
  for (int i = 0; i < n; ++i) {
    xs.push_back(kTrueMean + dev);
    dev = phi * dev + sigma * std::sqrt(1.0 - phi * phi) * rng.normal();
  }
  return xs;
}

/// Warmup drift: an exponential ramp toward the true mean plus noise.
std::vector<double> warmupSeries(Rng& rng, int n) {
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double ramp = 10.0 * std::exp(-static_cast<double>(i) / 4.0);
    xs.push_back(kTrueMean - ramp + 0.5 * rng.normal());
  }
  return xs;
}

/// One simulated adaptive campaign over a sampler: grows the series
/// with nextWindowGrowth until the CI target is met (the controller's
/// convergence rule) or the budget is spent.  Returns the sample count.
template <typename Sampler>
int adaptiveTrial(Sampler&& draw, double target, int minRepeats,
                  int maxRepeats, infer::SeriesEstimate* final) {
  std::vector<double> samples;
  for (int i = 0; i < minRepeats; ++i) samples.push_back(draw());
  while (true) {
    const infer::SeriesEstimate est = infer::estimateSeries(samples);
    const bool converged =
        est.n >= 2 && !est.drift && est.ciRelative <= target;
    if (converged || static_cast<int>(samples.size()) >= maxRepeats) {
      if (final != nullptr) *final = est;
      return static_cast<int>(samples.size());
    }
    int extra = infer::nextWindowGrowth(
        est, target, static_cast<int>(samples.size()));
    extra = std::min(extra,
                     maxRepeats - static_cast<int>(samples.size()));
    for (int i = 0; i < extra; ++i) samples.push_back(draw());
  }
}

void BM_EstimateSeries(benchmark::State& state) {
  Rng rng(17);
  const auto xs = ar1Series(rng, static_cast<int>(state.range(0)), 5.0, 0.7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::estimateSeries(xs));
  }
}
BENCHMARK(BM_EstimateSeries)->Arg(16)->Arg(256)->Arg(4096);

void BM_EdmChangepoint(benchmark::State& state) {
  Rng rng(23);
  std::vector<double> series;
  for (int i = 0; i < 1024; ++i) {
    series.push_back((i < 512 ? 100.0 : 90.0) + rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(infer::detectChangepointsEdm(series));
  }
}
BENCHMARK(BM_EdmChangepoint)->Unit(benchmark::kMillisecond);

void BM_AdaptiveCampaign(benchmark::State& state) {
  Rng rng(31);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adaptiveTrial(
        [&] { return kTrueMean + 5.0 * rng.normal(); }, 0.02, 3, 64,
        nullptr));
  }
}
BENCHMARK(BM_AdaptiveCampaign);

void reproduceAblation() {
  using Clock = std::chrono::steady_clock;
  int passed = 0;
  int failed = 0;
  auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS" : "FAIL") << ": " << what << "\n";
    (ok ? passed : failed) += 1;
  };

  // (1) Coverage on i.i.d. noise: the 95% interval should contain the
  // true mean in roughly 95% of trials.
  Rng rng(20230907);
  int coveredIid = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto est = infer::estimateSeries(iidSeries(rng, 16, 5.0));
    if (std::fabs(est.mean - kTrueMean) <= est.ciHalfwidth) ++coveredIid;
  }
  const double coverageIid = static_cast<double>(coveredIid) / kTrials;
  check(coverageIid >= 0.92 && coverageIid <= 0.98,
        "i.i.d. 95% CI covers the true mean in " +
            str::fixed(coverageIid * 100.0, 1) + "% of trials");

  // (2) Autocorrelation correction: on AR(1) series the naive
  // t * s / sqrt(n) interval undercovers badly; folding the ESS in
  // must recover most of the gap (and report ess << n).
  int coveredNaive = 0;
  int coveredEss = 0;
  double essSum = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const auto xs = ar1Series(rng, 32, 5.0, 0.7);
    const auto est = infer::estimateSeries(xs);
    const double naive = infer::tQuantile975(est.n - 1) * est.stddev /
                         std::sqrt(static_cast<double>(est.n));
    if (std::fabs(est.mean - kTrueMean) <= naive) ++coveredNaive;
    if (std::fabs(est.mean - kTrueMean) <= est.ciHalfwidth) ++coveredEss;
    essSum += est.ess;
  }
  const double coverageNaive = static_cast<double>(coveredNaive) / kTrials;
  const double coverageEss = static_cast<double>(coveredEss) / kTrials;
  const double meanEss = essSum / kTrials;
  check(coverageNaive < 0.90,
        "naive s/sqrt(n) interval undercovers AR(1) series (" +
            str::fixed(coverageNaive * 100.0, 1) + "%)");
  check(coverageEss >= coverageNaive + 0.05,
        "ESS-corrected interval recovers coverage (" +
            str::fixed(coverageEss * 100.0, 1) + "% vs " +
            str::fixed(coverageNaive * 100.0, 1) + "%)");
  check(meanEss < 24.0, "mean ESS " + str::fixed(meanEss, 1) +
                            " reports far fewer than the 32 raw samples");

  // (3) Adaptive economy: quiet series stop early, noisy series buy
  // more repeats, and every converged trial meets the CI target.
  const double target = 0.02;
  const int maxRepeats = 64;
  double repeatsQuiet = 0.0;
  double repeatsNoisy = 0.0;
  int converged = 0;
  int convergedAndMet = 0;
  const auto adaptiveStart = Clock::now();
  for (int t = 0; t < kTrials; ++t) {
    infer::SeriesEstimate est;
    repeatsQuiet += adaptiveTrial(
        [&] { return kTrueMean + 1.0 * rng.normal(); }, target, 3,
        maxRepeats, &est);
    repeatsNoisy += adaptiveTrial(
        [&] { return kTrueMean + 8.0 * rng.normal(); }, target, 3,
        maxRepeats, &est);
    if (est.ciRelative <= target) {
      ++converged;
      if (std::fabs(est.mean - kTrueMean) <=
          est.ciHalfwidth + target * kTrueMean) {
        ++convergedAndMet;
      }
    }
  }
  repeatsQuiet /= kTrials;
  repeatsNoisy /= kTrials;
  const double adaptiveSeconds =
      std::chrono::duration<double>(Clock::now() - adaptiveStart).count();
  check(repeatsQuiet + 2.0 < repeatsNoisy,
        "adaptive controller spends repeats where the noise is (" +
            str::fixed(repeatsQuiet, 1) + " quiet vs " +
            str::fixed(repeatsNoisy, 1) + " noisy)");
  check(repeatsNoisy < maxRepeats,
        "noisy series still converge inside the repeat budget");
  const double adaptiveAccuracy =
      converged > 0 ? static_cast<double>(convergedAndMet) / converged : 0.0;
  check(converged > 0 && adaptiveAccuracy >= 0.95,
        "converged trials land within CI + target of the truth in " +
            str::fixed(adaptiveAccuracy * 100.0, 1) + "% of cases");

  // (4) EDM changepoints: a seeded 10% shift is pinned to +/- 1 point;
  // flat noise stays clean.
  int edmHits = 0;
  int edmFalse = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<double> shifted;
    for (int i = 0; i < 24; ++i) {
      shifted.push_back((i < 12 ? 100.0 : 90.0) + rng.normal());
    }
    for (const auto& flag : infer::detectChangepointsEdm(shifted)) {
      if (flag.index >= 11 && flag.index <= 13) {
        ++edmHits;
        break;
      }
    }
    std::vector<double> flat;
    for (int i = 0; i < 24; ++i) flat.push_back(100.0 + rng.normal());
    if (!infer::detectChangepointsEdm(flat).empty()) ++edmFalse;
  }
  const double edmHitRate = static_cast<double>(edmHits) / kTrials;
  const double edmFpRate = static_cast<double>(edmFalse) / kTrials;
  check(edmHitRate >= 0.95, "EDM pins the seeded shift to +/- 1 point in " +
                                str::fixed(edmHitRate * 100.0, 1) +
                                "% of trials");
  check(edmFpRate <= 0.05, "EDM false-positive rate on flat noise is " +
                               str::fixed(edmFpRate * 100.0, 1) + "%");

  // (5) Drift guard: warmup ramps must block convergence.
  int driftFlagged = 0;
  for (int t = 0; t < kTrials; ++t) {
    if (infer::estimateSeries(warmupSeries(rng, 12)).drift) ++driftFlagged;
  }
  const double driftRate = static_cast<double>(driftFlagged) / kTrials;
  check(driftRate >= 0.90, "half-split guard flags warmup drift in " +
                               str::fixed(driftRate * 100.0, 1) +
                               "% of trials");

  // Estimation throughput over the AR(1) corpus.
  Rng timingRng(41);
  const auto corpus = ar1Series(timingRng, 4096, 5.0, 0.7);
  const auto estStart = Clock::now();
  constexpr int kEstReps = 200;
  for (int i = 0; i < kEstReps; ++i) {
    benchmark::DoNotOptimize(infer::estimateSeries(corpus));
  }
  const double estSeconds =
      std::chrono::duration<double>(Clock::now() - estStart).count();

  std::ofstream out("BENCH_infer.json");
  out << "{\"schema\":\"rebench.bench_infer/1\","
      << "\"trials\":" << kTrials << ","
      << "\"coverage_iid\":" << str::fixed(coverageIid, 4) << ","
      << "\"coverage_ar1_naive\":" << str::fixed(coverageNaive, 4) << ","
      << "\"coverage_ar1_ess\":" << str::fixed(coverageEss, 4) << ","
      << "\"mean_ess_ar1\":" << str::fixed(meanEss, 2) << ","
      << "\"adaptive_repeats_quiet\":" << str::fixed(repeatsQuiet, 2) << ","
      << "\"adaptive_repeats_noisy\":" << str::fixed(repeatsNoisy, 2) << ","
      << "\"adaptive_accuracy\":" << str::fixed(adaptiveAccuracy, 4) << ","
      << "\"adaptive_trials_per_s\":"
      << str::fixed(2.0 * kTrials / adaptiveSeconds, 1) << ","
      << "\"edm_hit_rate\":" << str::fixed(edmHitRate, 4) << ","
      << "\"edm_false_positive_rate\":" << str::fixed(edmFpRate, 4) << ","
      << "\"drift_detection_rate\":" << str::fixed(driftRate, 4) << ","
      << "\"estimate_points_per_s\":"
      << str::fixed(static_cast<double>(corpus.size()) * kEstReps /
                        estSeconds,
                    1)
      << ","
      << "\"checks_passed\":" << passed << ","
      << "\"checks_failed\":" << failed << "}\n";
  std::cout << "BENCH_infer.json written (coverage iid "
            << str::fixed(coverageIid * 100.0, 1) << "%, ess-corrected AR(1) "
            << str::fixed(coverageEss * 100.0, 1) << "% vs naive "
            << str::fixed(coverageNaive * 100.0, 1) << "%, adaptive "
            << str::fixed(repeatsQuiet, 1) << " vs "
            << str::fixed(repeatsNoisy, 1) << " repeats).\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
