// Experiment E1/E2 — Figure 2 and Table 1 of the paper.
//
// Reproduces the BabelStream performance-portability survey: the Triad
// figure of merit for every programming model on every platform, divided
// by the platform's theoretical peak memory bandwidth (Table 1), rendered
// as the Figure 2 heatmap.  Unsupported (model, platform) combinations
// appear as '*' cells, exactly as in the paper.
//
// Also demonstrates the Principle-1 ablation: ranking platforms by raw
// Triad GB/s vs by efficiency.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "babelstream/run.hpp"
#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/postproc/efficiency.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/plot.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

// ---- google-benchmark microbenchmarks of the native kernels -------------

void BM_TriadNative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  babelstream::StreamArrays arrays(n);
  auto backend = babelstream::makeNativeBackend("serial");
  for (auto _ : state) {
    backend->triad(arrays);
    benchmark::DoNotOptimize(arrays.a.data());
  }
  state.SetBytesProcessed(state.iterations() * 24 * n);
}
BENCHMARK(BM_TriadNative)->Arg(1 << 16)->Arg(1 << 20);

void BM_DotNative(benchmark::State& state) {
  const std::size_t n = state.range(0);
  babelstream::StreamArrays arrays(n);
  auto backend = babelstream::makeNativeBackend("serial");
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend->dot(arrays));
  }
  state.SetBytesProcessed(state.iterations() * 16 * n);
}
BENCHMARK(BM_DotNative)->Arg(1 << 16)->Arg(1 << 20);

// ---- the Figure 2 reproduction -------------------------------------------

// The platforms along Figure 2's horizontal axis, with the Table 1 peaks.
struct PlatformColumn {
  const char* target;      // system[:partition]
  const char* label;
  const char* machineId;
};
constexpr PlatformColumn kPlatforms[] = {
    {"isambard-macs:cascadelake", "isambard-macs:cascadelake", "clx-6230"},
    {"isambard:xci", "isambard-xci", "thunderx2"},
    {"noctua2", "paderborn-milan", "milan-7763"},
    {"isambard-macs:volta", "isambard-macs:volta", "v100"},
};

void printTable1() {
  AsciiTable table(
      "Table 1: Information about Processors Used for BabelStream "
      "Benchmarks");
  table.setHeader({"Vendor", "Processor", "Cores/CUs",
                   "Peak Memory Bandwidth (GB/s)"});
  for (const PlatformColumn& platform : kPlatforms) {
    const MachineModel& m = builtinMachines().get(platform.machineId);
    table.addRow({m.vendor, m.displayName,
                  std::to_string(m.totalCores()),
                  str::fixed(m.peakBandwidthGBs, 1)});
  }
  std::cout << "\n" << table.render();
}

void reproduceFigure2() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  PerfLog perflog;

  DataFrame::StringColumn modelCol, platformCol;
  DataFrame::NumericColumn efficiencyCol;

  for (const babelstream::ProgrammingModel& model :
       babelstream::figure2Models()) {
    for (const PlatformColumn& platform : kPlatforms) {
      babelstream::BabelstreamTestOptions options;
      options.model = model.id;
      options.ntimes = 100;
      const TestRunResult result = pipeline.runOne(
          babelstream::makeBabelstreamTest(options), platform.target,
          &perflog);
      if (!result.passed) continue;  // '*' cell: left out of the frame
      const MachineModel& m = builtinMachines().get(platform.machineId);
      modelCol.push_back(model.rowLabel);
      platformCol.push_back(platform.label);
      efficiencyCol.push_back(architecturalEfficiency(
          result.foms.at("Triad") / 1.0e3, m.peakBandwidthGBs));
    }
  }

  DataFrame frame;
  frame.addStrings("model", std::move(modelCol));
  frame.addStrings("platform", std::move(platformCol));
  frame.addNumeric("efficiency", std::move(efficiencyCol));

  const PivotTable pivot = frame.pivot("model", "platform", "efficiency");
  HeatmapOptions options;
  options.title =
      "Figure 2: BabelStream Triad FOM / theoretical peak bandwidth "
      "('*' = combination does not run)";
  std::cout << "\n" << renderHeatmap(pivot, options) << "\n";

  std::ofstream svg("fig2_babelstream.svg");
  svg << renderHeatmapSvg(pivot, options);
  std::cout << "(SVG written to fig2_babelstream.svg; perflog entries: "
            << perflog.size() << ")\n";

  // The paper's row decorations ("+" backend, "%" compiler, "@" version)
  // vary per platform; list them as the figure's legend.
  AsciiTable legend("Per-cell toolchains ('%' compiler, '@' version, '+' "
                    "backend), or the reason a cell is '*':");
  legend.setHeader({"model", "platform", "toolchain / reason"});
  for (const babelstream::ProgrammingModel& model :
       babelstream::figure2Models()) {
    for (const PlatformColumn& platform : kPlatforms) {
      const MachineModel& m = builtinMachines().get(platform.machineId);
      const babelstream::ModelSupport support = model.supportOn(m);
      legend.addRow({model.rowLabel, platform.label,
                     support.supported ? support.compilerLabel
                                       : "* " + support.reason});
    }
  }
  std::cout << "\n" << legend.render();

  // Performance-portability metric per model across the CPU+GPU set.
  AsciiTable pp("Performance portability (Pennycook harmonic mean, all 4 "
                "platforms):");
  pp.setHeader({"model", "PP", "supported", "min eff", "max eff"});
  for (const babelstream::ProgrammingModel& model :
       babelstream::figure2Models()) {
    std::vector<EfficiencyObservation> observations;
    for (const PlatformColumn& platform : kPlatforms) {
      const MachineModel& m = builtinMachines().get(platform.machineId);
      std::optional<double> eff;
      const auto run = babelstream::runModeled(
          model.id, m, babelstream::paperArraySize(m), 20);
      if (run) {
        eff = architecturalEfficiency(run->triadGBs(), m.peakBandwidthGBs);
      }
      observations.push_back({platform.label, eff});
    }
    const PortabilityReport report = analyzePortability(observations);
    pp.addRow({model.rowLabel, str::fixed(report.pp, 3),
               std::to_string(report.supportedPlatforms) + "/4",
               str::fixed(report.minEfficiency, 3),
               str::fixed(report.maxEfficiency, 3)});
  }
  std::cout << "\n" << pp.render();

  // Principle-1 ablation: raw GB/s mis-ranks platforms that efficiency
  // ranks fairly (a V100 "wins" on GB/s even at mediocre efficiency).
  AsciiTable raw("Ablation (Principle 1): OpenMP Triad, raw FOM vs "
                 "efficiency FOM");
  raw.setHeader({"platform", "Triad GB/s", "efficiency"});
  for (const PlatformColumn& platform : kPlatforms) {
    const MachineModel& m = builtinMachines().get(platform.machineId);
    const auto run = babelstream::runModeled(
        "omp", m, babelstream::paperArraySize(m), 20);
    if (!run) continue;
    raw.addRow({platform.label, str::fixed(run->triadGBs(), 1),
                str::fixed(architecturalEfficiency(run->triadGBs(),
                                                   m.peakBandwidthGBs) *
                               100.0,
                           1) +
                    "%"});
  }
  std::cout << "\n" << raw.render();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable1();
  reproduceFigure2();
  return 0;
}
