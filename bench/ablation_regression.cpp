// Experiment E11 (extension, paper §4) — cross-system performance
// regression testing as a CI pipeline.
//
// Simulates a nightly CI run of BabelStream across three systems over 30
// "days".  On day 20 one system suffers a silent platform degradation
// (a BIOS/firmware change halving its sustained bandwidth fraction) —
// invisible to correctness tests, caught by the perflog-history detector.
#include <benchmark/benchmark.h>

#include <iostream>

#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/postproc/regression.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

void BM_DetectOverLongHistory(benchmark::State& state) {
  PerfHistory history;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    PerfLogEntry entry;
    entry.timestamp = "T" + std::to_string(i);
    entry.system = "archer2";
    entry.partition = "compute";
    entry.testName = "t";
    entry.fomName = "Triad";
    entry.value = 100.0 * rng.noiseFactor(0.01);
    entry.result = "pass";
    history.add(entry);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.detect());
  }
}
BENCHMARK(BM_DetectOverLongHistory);

void reproduceCiScenario() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  const int kDays = 30;
  const int kDegradationDay = 20;
  PerfHistory history;

  for (int day = 0; day < kDays; ++day) {
    for (const char* target : {"archer2", "csd3", "noctua2"}) {
      babelstream::BabelstreamTestOptions options;
      options.model = "omp";
      options.ntimes = 20;
      PerfLog log;
      const TestRunResult result = pipeline.runOne(
          babelstream::makeBabelstreamTest(options), target, &log);
      if (!result.passed) continue;
      for (const std::string& line : log.lines()) {
        PerfLogEntry entry = PerfLogEntry::parse(line);
        if (entry.fomName != "Triad") continue;
        entry.timestamp = "day" + std::to_string(day);
        // Day-to-day machine-room noise...
        Rng noise = Rng::fromKey("ci:" + std::string(target) + ":" +
                                 std::to_string(day));
        entry.value *= noise.noiseFactor(0.012);
        // ...and csd3's silent degradation after its maintenance window.
        if (std::string(target) == "csd3" && day >= kDegradationDay) {
          entry.value *= 0.88;
        }
        history.add(entry);
      }
    }
  }

  const std::vector<RegressionEvent> events = history.detect();
  AsciiTable table("CI regression events over 30 nightly runs:");
  table.setHeader({"series", "day", "value", "expected", "deviation"});
  for (const RegressionEvent& event : events) {
    table.addRow({event.key.toString(), event.point.timestamp,
                  str::fixed(event.point.value, 0),
                  str::fixed(event.expected, 0),
                  str::fixed(event.deviation * 100.0, 1) + "%"});
  }
  std::cout << "\n" << table.render();

  bool caught = false;
  for (const RegressionEvent& event : events) {
    caught |= event.key.system == "csd3" &&
              event.point.timestamp == "day" +
                                           std::to_string(kDegradationDay);
  }
  std::cout << "\nInjected 12% degradation on csd3 at day "
            << kDegradationDay << ": "
            << (caught ? "DETECTED on the first degraded run"
                       : "NOT DETECTED")
            << "; other systems raised "
            << std::count_if(events.begin(), events.end(),
                             [](const RegressionEvent& e) {
                               return e.key.system != "csd3";
                             })
            << " false alarms.\n";

  const SeriesKey csd3Key{"csd3", "cclake", "BabelstreamTest_omp", "Triad"};
  if (history.has(csd3Key)) {
    std::cout << "\n"
              << renderHistoryPlot(history.series(csd3Key), events,
                                   "csd3 Triad MB/s over 30 days");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceCiScenario();
  return 0;
}
