// Experiment E14 (extension) — "Twelve Ways to Fool the Masses",
// mechanically detected.
//
// The paper's Principles exist to make Bailey's tricks impossible; the
// hygiene auditor makes the surviving ones *detectable* in collected
// data.  This bench stages a clean study and four classic manipulations
// of it, and shows the audit verdict for each.
#include <benchmark/benchmark.h>

#include <iostream>

#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/postproc/hygiene.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

void BM_AuditLargePerflog(benchmark::State& state) {
  std::vector<PerfLogEntry> entries;
  for (int i = 0; i < 2000; ++i) {
    PerfLogEntry entry;
    entry.system = "sys" + std::to_string(i % 5);
    entry.partition = "p";
    entry.testName = "t" + std::to_string(i % 7);
    entry.fomName = "Triad";
    entry.value = 100.0 + i;
    entry.unit = Unit::kMBperSec;
    entry.result = "pass";
    entry.binaryId = "bin";
    entry.spec = "babelstream@4.0";
    entry.reference = 100.0;
    entries.push_back(entry);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditPerflog(entries));
  }
}
BENCHMARK(BM_AuditLargePerflog);

std::vector<PerfLogEntry> cleanStudy() {
  // A properly-run study: 5 repeats of the same benchmark on two systems,
  // through the real pipeline (so every entry carries full provenance).
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  PipelineOptions options;
  options.numRepeats = 5;
  Pipeline pipeline(systems, repo, options);
  PerfLog log;
  babelstream::BabelstreamTestOptions test;
  test.model = "omp";
  test.ntimes = 20;
  const std::array<RegressionTest, 1> tests{
      babelstream::makeBabelstreamTest(test)};
  const std::array<std::string, 2> targets{"archer2", "csd3"};
  pipeline.runAll(tests, targets, &log);
  return PerfLog::parseLines(log.lines());
}

void reproduceAblation() {
  const std::vector<PerfLogEntry> clean = cleanStudy();

  struct Scenario {
    const char* name;
    std::vector<PerfLogEntry> entries;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean study (5 repeats, full provenance)", clean});

  // Trick 1: quote a single (best) run per system.
  {
    std::vector<PerfLogEntry> best;
    for (const PerfLogEntry& entry : clean) {
      bool keep = true;
      for (const PerfLogEntry& other : best) {
        if (other.system == entry.system &&
            other.fomName == entry.fomName) {
          keep = false;
        }
      }
      if (keep) best.push_back(entry);
    }
    scenarios.push_back({"cherry-pick one run per system", std::move(best)});
  }

  // Trick 2: quietly swap in a retuned binary for some of the repeats.
  {
    std::vector<PerfLogEntry> mixed = clean;
    for (std::size_t i = 1; i < mixed.size(); i += 2) {
      mixed[i].binaryId = "secretly-optimised-build";
      mixed[i].value *= 1.15;
    }
    scenarios.push_back({"swap in a retuned binary mid-series",
                         std::move(mixed)});
  }

  // Trick 3: run a smaller problem on the slower system.
  {
    std::vector<PerfLogEntry> unfair = clean;
    for (PerfLogEntry& entry : unfair) {
      if (entry.system == "csd3") {
        entry.spec = "babelstream@4.0 model=omp array_size=small";
      }
    }
    scenarios.push_back({"different problem on one system",
                         std::move(unfair)});
  }

  // Trick 4: strip the units (Bailey's favourite ambiguity).
  {
    std::vector<PerfLogEntry> unitless = clean;
    for (PerfLogEntry& entry : unitless) entry.unit = Unit::kNone;
    scenarios.push_back({"report bare numbers without units",
                         std::move(unitless)});
  }

  AsciiTable table("Ablation: the hygiene auditor vs classic manipulations");
  table.setHeader({"scenario", "findings", "rules triggered"});
  for (const Scenario& scenario : scenarios) {
    const auto findings = auditPerflog(scenario.entries);
    std::string rules;
    std::string last;
    for (const HygieneFinding& finding : findings) {
      const std::string name(hygieneRuleName(finding.rule));
      if (name != last) {
        if (!rules.empty()) rules += ", ";
        rules += name;
        last = name;
      }
    }
    table.addRow({scenario.name, std::to_string(findings.size()),
                  findings.empty() ? "(clean)" : rules});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nEvery manipulated variant is flagged; the honestly-run "
               "study is clean.  This is Principle 6 closing the loop on "
               "Bailey [3] and Hoefler & Belli [17].\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
