// Experiments E6/E7 — Tables 4 and 5 of the paper.
//
// Runs the HPGMG-FV benchmark through the framework pipeline on the four
// §3.3 systems with the appendix geometry (8 tasks, 2 per node, 8 cpus
// per task, args "7 8") and prints the l0/l1/l2 compute rates, plus the
// Table 5 processor inventory.
#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>

#include "core/framework/pipeline.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/plot.hpp"
#include "core/sched/launcher.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpgmg/testcase.hpp"

namespace {

using namespace rebench;

// ---- microbenchmarks: multigrid kernels natively --------------------------

void BM_GsrbSweep(benchmark::State& state) {
  hpgmg::Level level(static_cast<int>(state.range(0)));
  hpgmg::WorkCounters counters;
  hpgmg::fillManufacturedRhs(level);
  for (auto _ : state) {
    hpgmg::smoothGSRB(level, counters);
    benchmark::DoNotOptimize(level.u.data());
  }
  state.SetItemsProcessed(state.iterations() * level.cells());
}
BENCHMARK(BM_GsrbSweep)->Arg(16)->Arg(32);

void BM_FmgSolve(benchmark::State& state) {
  for (auto _ : state) {
    hpgmg::MgSolver solver(static_cast<int>(state.range(0)));
    hpgmg::fillManufacturedRhs(solver.fineLevel());
    benchmark::DoNotOptimize(solver.fmgSolve());
  }
  const std::size_t dof = static_cast<std::size_t>(state.range(0)) *
                          state.range(0) * state.range(0);
  state.SetItemsProcessed(state.iterations() * dof);
}
BENCHMARK(BM_FmgSolve)->Arg(16)->Arg(32);

// ---- the Table 4 reproduction ---------------------------------------------

struct SystemRow {
  const char* target;
  const char* label;
};
constexpr SystemRow kSystems[] = {
    {"archer2", "ARCHER2 (Rome)"},
    {"cosma8", "COSMA8 (Rome)"},
    {"csd3", "CSD3 (Cascade Lake)"},
    {"isambard-macs:cascadelake", "Isambard (Cascade Lake)"},
};

void printTable5() {
  const SystemRegistry systems = builtinSystems();
  AsciiTable table("Table 5: Details of the processors used in this study");
  table.setHeader({"System", "Processor", "Core count", "Scheduler",
                   "Launcher"});
  for (const char* target :
       {"isambard:xci", "isambard-macs:cascadelake", "isambard-macs:volta",
        "cosma8", "archer2", "csd3", "noctua2"}) {
    const auto [sys, part] = systems.resolve(target);
    const ProcessorInfo& p = part->processor;
    const std::string cores =
        p.isGpu ? "-"
                : std::to_string(p.coresPerSocket) + " cores/socket, " +
                      std::to_string(p.sockets) + " sockets";
    table.addRow({sys->name, p.model + " @ " + str::fixed(p.baseClockGhz, 2) +
                                 " GHz",
                  cores, std::string(schedulerName(part->scheduler)),
                  std::string(launcherName(part->launcher))});
  }
  std::cout << "\n" << table.render();
}

void reproduceTable4() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  PerfLog perflog;

  const RegressionTest test = hpgmg::makeHpgmgTest({});

  AsciiTable table(
      "Table 4: Figures of Merit of HPGMG-FV benchmark, compute rate in "
      "10^6 DOF/s (8 tasks, 2 tasks/node, 8 cpus/task, args '7 8')");
  table.setHeader({"System", "l0", "l1", "l2"});
  for (const SystemRow& row : kSystems) {
    const TestRunResult result =
        pipeline.runOne(test, row.target, &perflog);
    if (!result.passed) {
      table.addRow({row.label, "FAILED: " + result.failure.stage, "", ""});
      continue;
    }
    table.addRow({row.label, str::fixed(result.foms.at("l0"), 2),
                  str::fixed(result.foms.at("l1"), 2),
                  str::fixed(result.foms.at("l2"), 2)});
  }
  std::cout << "\n" << table.render();

  AsciiTable paper("Paper's Table 4 values, for comparison:");
  paper.setHeader({"System", "l0", "l1", "l2"});
  paper.addRow({"ARCHER2 (Rome)", "95.36", "83.43", "62.18"});
  paper.addRow({"COSMA8 (Rome)", "81.67", "72.96", "75.09"});
  paper.addRow({"CSD3 (Cascade Lake)", "126.10", "94.39", "49.40"});
  paper.addRow({"Isambard (Cascade Lake)", "30.59", "25.55", "17.55"});
  std::cout << "\n" << paper.render();

  // Post-processing path (Principle 6): perflog -> frame -> bar chart.
  const DataFrame frame =
      perflogToDataFrame(PerfLog::parseLines(perflog.lines()));
  const DataFrame l0 = frame.filterEquals("fom", "l0");
  std::vector<std::string> labels;
  std::vector<double> values;
  for (std::size_t i = 0; i < l0.rowCount(); ++i) {
    labels.push_back(l0.strings("system")[i]);
    values.push_back(l0.numeric("value")[i]);
  }
  std::cout << "\n"
            << renderBarChart(labels, values,
                              {.title = "HPGMG-FV l0 rate per system",
                               .width = 40,
                               .valueSuffix = " MDOF/s"});
  std::ofstream svg("table4_hpgmg_l0.svg");
  svg << renderBarChartSvg(labels, values,
                           {.title = "HPGMG-FV l0 (MDOF/s)",
                            .valueSuffix = " MDOF/s"});
  std::cout << "(SVG written to table4_hpgmg_l0.svg)\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printTable5();
  reproduceTable4();
  return 0;
}
