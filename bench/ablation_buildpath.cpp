// Experiment E8 — §3.1's claim that building through the package manager
// costs no performance: "We have not observed any specific degradation in
// runtime performance between building BabelStream via Spack ... from
// invoking the CMake manually."
//
// Here: run BabelStream through the full framework pipeline (concretize +
// build plan + scheduler) and directly (bare native run), and compare the
// Triad figure of merit.  The pipeline adds provenance, not overhead.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "babelstream/run.hpp"
#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

void BM_PipelineOverhead(benchmark::State& state) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  babelstream::BabelstreamTestOptions options;
  options.model = "omp";
  options.ntimes = 5;
  const RegressionTest test = babelstream::makeBabelstreamTest(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline.runOne(test, "isambard-macs:cascadelake"));
  }
}
BENCHMARK(BM_PipelineOverhead);

void reproduceAblation() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  AsciiTable table(
      "Ablation (§3.1): BabelStream Triad via the framework pipeline vs a "
      "direct manual run (modelled platforms + native host)");
  table.setHeader({"platform", "model", "pipeline GB/s", "direct GB/s",
                   "delta"});

  struct Case {
    const char* target;
    const char* machineId;  // empty = native
    const char* model;
  };
  constexpr Case kCases[] = {
      {"isambard-macs:cascadelake", "clx-6230", "omp"},
      {"noctua2", "milan-7763", "omp"},
      {"isambard-macs:volta", "v100", "cuda"},
      {"local", "", "serial"},
  };

  double maxDelta = 0.0;
  for (const Case& c : kCases) {
    babelstream::BabelstreamTestOptions options;
    options.model = c.model;
    options.ntimes = 50;
    options.nativeArraySize = 1 << 20;
    const TestRunResult viaPipeline = pipeline.runOne(
        babelstream::makeBabelstreamTest(options), c.target);
    if (!viaPipeline.passed) continue;
    const double pipelineGBs = viaPipeline.foms.at("Triad") / 1.0e3;

    double directGBs = 0.0;
    if (c.machineId[0] != '\0') {
      const MachineModel& m = builtinMachines().get(c.machineId);
      const auto direct = babelstream::runModeled(
          c.model, m, babelstream::paperArraySize(m), 50);
      directGBs = direct->triadGBs();
    } else {
      // Native: best of 3 direct runs, mirroring manual benchmarking.
      for (int rep = 0; rep < 3; ++rep) {
        directGBs = std::max(
            directGBs,
            babelstream::runNative(c.model, options.nativeArraySize, 50)
                .triadGBs());
      }
    }
    const double delta = (pipelineGBs - directGBs) / directGBs * 100.0;
    if (c.machineId[0] != '\0') maxDelta = std::max(maxDelta, std::abs(delta));
    table.addRow({c.target, c.model, str::fixed(pipelineGBs, 1),
                  str::fixed(directGBs, 1), str::fixed(delta, 2) + "%"});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nMax |delta| on modelled platforms: "
            << str::fixed(maxDelta, 3)
            << "% — the framework path measures the same binary doing the "
               "same work (the native row differs only by host noise).\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
