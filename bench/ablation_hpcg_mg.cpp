// Experiment E13 (extension) — ablation of the HPCG preconditioner
// hierarchy: single-level SYMGS vs the HPCG-style multigrid V-cycle.
//
// Real HPCG uses the MG preconditioner; the Table 2 reproduction uses
// SYMGS for its calibrated kernel mix.  This bench quantifies what the
// hierarchy buys (iterations to tolerance) and what it costs (work per
// iteration), natively on this host.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpcg/cg.hpp"
#include "hpcg/mg_preconditioner.hpp"

namespace {

using namespace rebench;
using namespace rebench::hpcg;

Geometry cube(int n) {
  Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = n;
  return g;
}

std::vector<double> onesRhs(const Operator& A) {
  std::vector<double> ones(A.n(), 1.0);
  std::vector<double> b(A.n());
  A.apply(ones, HaloView{}, b);
  return b;
}

void BM_SymgsPrecond(benchmark::State& state) {
  const auto A = makeOperator(Variant::kCsr, cube(32));
  std::vector<double> r(A->n(), 1.0), z(A->n());
  for (auto _ : state) {
    A->precondition(r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_SymgsPrecond);

void BM_MgPrecond(benchmark::State& state) {
  const Geometry g = cube(32);
  const auto A = makeOperator(Variant::kCsr, g);
  MgPreconditioner mg(Variant::kCsr, g);
  std::vector<double> r(A->n(), 1.0), z(A->n());
  for (auto _ : state) {
    mg.apply(*A, r, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_MgPrecond);

void reproduceAblation() {
  AsciiTable table(
      "Ablation: SYMGS vs multigrid preconditioning of CG "
      "(32^3, tolerance 1e-9, native)");
  table.setHeader({"variant", "precond", "iterations", "Gflop total",
                   "flops/iter ratio"});

  for (Variant v : {Variant::kCsr, Variant::kMatrixFree, Variant::kLfric}) {
    const Geometry g = cube(32);
    const auto A = makeOperator(v, g);
    const std::vector<double> b = onesRhs(*A);

    CgOptions symgs;
    symgs.maxIterations = 400;
    symgs.tolerance = 1e-9;
    CgOptions mg = symgs;
    mg.useMultigrid = true;

    const CgResult symgsResult = conjugateGradient(*A, b, symgs);
    const CgResult mgResult = conjugateGradient(*A, b, mg);

    const double symgsPerIter =
        symgsResult.counters.flops / symgsResult.counters.iterations;
    const double mgPerIter =
        mgResult.counters.flops / mgResult.counters.iterations;

    table.addRow({std::string(variantName(v)), "symgs",
                  std::to_string(symgsResult.counters.iterations),
                  str::fixed(symgsResult.counters.flops / 1e9, 3), "1.00"});
    table.addRow({"", "multigrid",
                  std::to_string(mgResult.counters.iterations),
                  str::fixed(mgResult.counters.flops / 1e9, 3),
                  str::fixed(mgPerIter / symgsPerIter, 2)});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nMultigrid costs more per iteration (the hierarchy's "
               "smoothing work) but needs far fewer iterations — the "
               "trade real HPCG makes.  It is also another instance of "
               "the paper's §3.2 lesson: an algorithmic change (the "
               "preconditioner) dwarfs implementation-level tuning.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
