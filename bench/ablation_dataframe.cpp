// Experiment E17 (extension) — columnar dataframe engine.
//
// A synthetic million-row perflog corpus (6 systems x 8 tests x 4 FOMs,
// rows clustered by system the way per-shard assimilation produces them)
// is pushed through both dataframe engines: the frozen row engine
// (legacy::RowFrame, the pre-refactor implementation kept verbatim) and
// the columnar engine behind the DataFrame façade.  The microbenchmarks
// quantify per-kernel cost at 100k rows; reproduceAblation() checks the
// claims the refactor was sold on — >=10x on group-by and per-group
// percentiles at 1M rows, zone-map chunk skipping on clustered
// predicates, streaming merge memory bounded by inputs x chunk (not
// total rows), and bit-identical results from both engines — then
// writes BENCH_dataframe.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/framework/perflog.hpp"
#include "core/postproc/columnar/arena.hpp"
#include "core/postproc/columnar/kernels.hpp"
#include "core/postproc/dataframe.hpp"
#include "core/postproc/legacy_rowframe.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/stats.hpp"
#include "core/util/strings.hpp"

namespace {

using namespace rebench;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kRows = 1'000'000;
constexpr std::size_t kMicroRows = 100'000;

const char* kSystems[] = {"archer2",  "csd3",    "cirrus",
                          "isambard", "noctua2", "cosma8"};
const char* kTests[] = {"stream",  "hpcg",     "hpgmg",   "sombrero",
                        "babelstream", "osu_bw", "osu_lat", "minisweep"};
const char* kFoms[] = {"bandwidth", "latency", "flops", "walltime"};

/// Deterministic corpus, clustered by system: each system's rows are
/// contiguous (that is what concatenating per-shard perflogs yields), so
/// an equality probe on `system` exercises zone-map chunk skipping.
struct Corpus {
  std::vector<std::string> systems, tests, foms;
  std::vector<double> values;
};

Corpus makeCorpus(std::size_t rows) {
  Corpus corpus;
  corpus.systems.reserve(rows);
  corpus.tests.reserve(rows);
  corpus.foms.reserve(rows);
  corpus.values.reserve(rows);
  std::uint64_t state = 0x243f6a8885a308d3ull;
  const std::size_t perSystem = rows / 6;
  for (std::size_t i = 0; i < rows; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    corpus.systems.push_back(kSystems[std::min<std::size_t>(
        i / perSystem, 5)]);
    corpus.tests.push_back(kTests[(state >> 33) % 8]);
    corpus.foms.push_back(kFoms[(state >> 17) % 4]);
    corpus.values.push_back(static_cast<double>(state % 10'000'000) / 997.0);
  }
  return corpus;
}

DataFrame columnarFrame(const Corpus& corpus) {
  DataFrame frame;
  frame.addStrings("system", corpus.systems);
  frame.addStrings("test", corpus.tests);
  frame.addStrings("fom", corpus.foms);
  frame.addNumeric("value", corpus.values);
  return frame;
}

legacy::RowFrame rowFrame(const Corpus& corpus) {
  legacy::RowFrame frame;
  frame.addStrings("system", corpus.systems);
  frame.addStrings("test", corpus.tests);
  frame.addStrings("fom", corpus.foms);
  frame.addNumeric("value", corpus.values);
  return frame;
}

const std::vector<std::string> kGroupKeys = {"system", "test", "fom"};

/// Per-group percentiles the way the row engine would have computed them:
/// composite vector<string> keys into a std::map (the idiom of
/// RowFrame::groupBy) and one stats::percentile call — one sort of a
/// scratch copy — per requested percentile.
std::vector<double> rowEnginePercentiles(const legacy::RowFrame& frame,
                                         std::span<const double> ps) {
  const auto& values = frame.numeric("value");
  std::vector<const std::vector<std::string>*> keys;
  for (const std::string& key : kGroupKeys) keys.push_back(&frame.strings(key));
  std::map<std::vector<std::string>, std::vector<double>> groups;
  std::vector<const std::vector<double>*> order;
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    std::vector<std::string> key;
    key.reserve(keys.size());
    for (const auto* col : keys) key.push_back((*col)[i]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) order.push_back(&it->second);
    it->second.push_back(values[i]);
  }
  std::vector<double> out;
  out.reserve(order.size() * ps.size());
  for (const auto* group : order) {
    for (const double p : ps) out.push_back(rebench::percentile(*group, p));
  }
  return out;
}

// ---- microbenchmarks (100k rows) ----------------------------------------

void BM_GroupByRowEngine(benchmark::State& state) {
  const legacy::RowFrame frame = rowFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.groupBy(kGroupKeys, "value", Agg::kMean));
  }
}
BENCHMARK(BM_GroupByRowEngine)->Unit(benchmark::kMillisecond);

void BM_GroupByColumnar(benchmark::State& state) {
  const DataFrame frame = columnarFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.groupBy(kGroupKeys, "value", Agg::kMean));
  }
}
BENCHMARK(BM_GroupByColumnar)->Unit(benchmark::kMillisecond);

void BM_FilterEqualsRowEngine(benchmark::State& state) {
  const legacy::RowFrame frame = rowFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.filterEquals("system", "csd3"));
  }
}
BENCHMARK(BM_FilterEqualsRowEngine)->Unit(benchmark::kMillisecond);

void BM_FilterEqualsColumnar(benchmark::State& state) {
  const DataFrame frame = columnarFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.filterEquals("system", "csd3"));
  }
}
BENCHMARK(BM_FilterEqualsColumnar)->Unit(benchmark::kMillisecond);

void BM_SortRowEngine(benchmark::State& state) {
  const legacy::RowFrame frame = rowFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.sortBy("value", false));
  }
}
BENCHMARK(BM_SortRowEngine)->Unit(benchmark::kMillisecond);

void BM_SortColumnar(benchmark::State& state) {
  const DataFrame frame = columnarFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.sortBy("value", false));
  }
}
BENCHMARK(BM_SortColumnar)->Unit(benchmark::kMillisecond);

void BM_DescribeRowEngine(benchmark::State& state) {
  const legacy::RowFrame frame = rowFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.describe());
  }
}
BENCHMARK(BM_DescribeRowEngine)->Unit(benchmark::kMillisecond);

void BM_DescribeColumnar(benchmark::State& state) {
  const DataFrame frame = columnarFrame(makeCorpus(kMicroRows));
  for (auto _ : state) {
    benchmark::DoNotOptimize(frame.describe());
  }
}
BENCHMARK(BM_DescribeColumnar)->Unit(benchmark::kMillisecond);

// ---- checked ablation at 1M rows ----------------------------------------

double seconds(Clock::time_point from) {
  return std::chrono::duration<double>(Clock::now() - from).count();
}

PerfLogEntry shardEntry(const std::string& stamp, const char* system,
                        double value) {
  PerfLogEntry entry;
  entry.timestamp = stamp;
  entry.system = system;
  entry.partition = "standard";
  entry.environ = "gcc@11.2.0";
  entry.testName = "stream";
  entry.spec = "stream@1.0";
  entry.specHash = "0123456789abcdef";
  entry.binaryId = "fedcba9876543210";
  entry.jobId = "1";
  entry.fomName = "bandwidth";
  entry.value = value;
  entry.unit = Unit::kGBperSec;
  entry.result = "pass";
  return entry;
}

int reproduceAblation() {
  int passed = 0;
  int failed = 0;
  auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS" : "FAIL") << ": " << what << "\n";
    (ok ? passed : failed) += 1;
  };

  std::cout << "building " << kRows << "-row corpus...\n";
  const Corpus corpus = makeCorpus(kRows);
  const DataFrame columnar = columnarFrame(corpus);
  const legacy::RowFrame rows = rowFrame(corpus);

  // (1) group-by: composite-key aggregation, both engines, same bytes.
  const auto rowGroupStart = Clock::now();
  const legacy::RowFrame rowGrouped =
      rows.groupBy(kGroupKeys, "value", Agg::kMean);
  const double rowGroupSeconds = seconds(rowGroupStart);
  const auto colGroupStart = Clock::now();
  const DataFrame colGrouped =
      columnar.groupBy(kGroupKeys, "value", Agg::kMean);
  const double colGroupSeconds = seconds(colGroupStart);
  const double groupSpeedup = rowGroupSeconds / colGroupSeconds;
  check(colGrouped.toCsv() == rowGrouped.toCsv(),
        "group-by output is byte-identical across engines");
  check(groupSpeedup >= 10.0,
        "columnar group-by >= 10x row engine at 1M rows (" +
            str::fixed(groupSpeedup, 1) + "x)");

  // (2) per-group percentiles: one sort per group vs the row idiom's
  // sort-per-percentile over map-of-vectors groups.
  const std::vector<double> ps = {50.0, 99.0};
  const auto rowPctStart = Clock::now();
  const std::vector<double> rowPct = rowEnginePercentiles(rows, ps);
  const double rowPctSeconds = seconds(rowPctStart);
  const auto colPctStart = Clock::now();
  const DataFrame colPct = columnar.groupPercentiles(kGroupKeys, "value", ps);
  const double colPctSeconds = seconds(colPctStart);
  const double pctSpeedup = rowPctSeconds / colPctSeconds;
  bool pctMatch = colPct.rowCount() * ps.size() == rowPct.size();
  if (pctMatch) {
    const auto& p50 = colPct.numeric("p50");
    const auto& p99 = colPct.numeric("p99");
    for (std::size_t g = 0; g < colPct.rowCount(); ++g) {
      pctMatch = pctMatch && p50[g] == rowPct[2 * g] &&
                 p99[g] == rowPct[2 * g + 1];
    }
  }
  check(pctMatch, "per-group percentiles are bit-identical across engines");
  check(pctSpeedup >= 10.0,
        "columnar percentiles >= 10x row engine at 1M rows (" +
            str::fixed(pctSpeedup, 1) + "x)");

  // (3) describe() identity (all-numeric summary path).
  check(columnar.describe().toCsv() == rows.describe().toCsv(),
        "describe() output is byte-identical across engines");

  // (4) pivot identity on the full corpus.
  const PivotTable colPivot = columnar.pivot("system", "test", "value");
  const PivotTable rowPivot = rows.pivot("system", "test", "value");
  bool pivotSame = colPivot.rowLabels == rowPivot.rowLabels &&
                   colPivot.colLabels == rowPivot.colLabels;
  for (std::size_t r = 0; pivotSame && r < colPivot.cells.size(); ++r) {
    for (std::size_t c = 0; c < colPivot.cells[r].size(); ++c) {
      pivotSame = pivotSame && colPivot.cells[r][c] == rowPivot.cells[r][c];
    }
  }
  check(pivotSame, "pivot labels and cells are identical across engines");

  // (5) zone maps: probing one system on the clustered corpus must skip
  // the chunks the other five systems occupy.
  columnar::Arena arena;
  columnar::KernelStats zoneStats;
  const auto hits = columnar::selectEquals(
      columnar.table().find("system")->strs(), "cosma8", arena, &zoneStats);
  check(!hits.empty() && zoneStats.chunks >= 15 &&
            zoneStats.skippedChunks >= (zoneStats.chunks * 3) / 5,
        "zone maps skip >= 3/5 of chunks on a clustered equality probe (" +
            std::to_string(zoneStats.skippedChunks) + "/" +
            std::to_string(zoneStats.chunks) + ")");

  // (6) streaming k-way merge: 8 shards of 25k rows merged through
  // 4096-row windows must buffer O(inputs x chunk), not O(total rows),
  // and come out globally time-ordered.
  const fs::path dir = fs::temp_directory_path() / "rebench-bench-dataframe";
  fs::remove_all(dir);
  fs::create_directories(dir);
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kShardRows = 25'000;
  std::vector<std::string> shardPaths;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::string path = (dir / ("shard" + std::to_string(s) + ".log"))
                                 .string();
    std::ofstream out(path);
    for (std::size_t i = 0; i < kShardRows; ++i) {
      // Interleaved stamps: shard s holds s, s+8, s+16, ...
      out << shardEntry(std::to_string(s + i * kShards), kSystems[s % 6],
                        static_cast<double>(i))
                 .serialize()
          << "\n";
    }
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    shardPaths.push_back(entry.path().string());
  }
  std::sort(shardPaths.begin(), shardPaths.end());
  MergeStats mergeStats;
  const auto mergeStart = Clock::now();
  const columnar::Table merged =
      mergePerflogsByTime(shardPaths, 4096, nullptr, &mergeStats);
  const double mergeSeconds = seconds(mergeStart);
  bool ordered = merged.rows == kShards * kShardRows;
  const auto& stamps = merged.find("ts")->strs().materialize();
  for (std::size_t i = 0; ordered && i < stamps.size(); ++i) {
    ordered = stamps[i] == std::to_string(i);
  }
  check(ordered, "k-way merge of 8 shards is globally time-ordered");
  check(mergeStats.peakBufferedRows <= kShards * 4096,
        "merge buffers <= inputs x chunk rows (" +
            std::to_string(mergeStats.peakBufferedRows) + " <= " +
            std::to_string(kShards * 4096) + "), not total rows");
  fs::remove_all(dir);

  std::ofstream out("BENCH_dataframe.json");
  out << "{\"schema\":\"rebench.bench_dataframe/1\","
      << "\"rows\":" << kRows << ","
      << "\"groups\":" << colGrouped.rowCount() << ","
      << "\"groupby_row_engine_s\":" << str::fixed(rowGroupSeconds, 4) << ","
      << "\"groupby_columnar_s\":" << str::fixed(colGroupSeconds, 4) << ","
      << "\"groupby_speedup\":" << str::fixed(groupSpeedup, 1) << ","
      << "\"percentile_row_engine_s\":" << str::fixed(rowPctSeconds, 4) << ","
      << "\"percentile_columnar_s\":" << str::fixed(colPctSeconds, 4) << ","
      << "\"percentile_speedup\":" << str::fixed(pctSpeedup, 1) << ","
      << "\"zone_chunks\":" << zoneStats.chunks << ","
      << "\"zone_chunks_skipped\":" << zoneStats.skippedChunks << ","
      << "\"merge_rows\":" << mergeStats.rows << ","
      << "\"merge_rows_per_s\":"
      << str::fixed(static_cast<double>(mergeStats.rows) / mergeSeconds, 1)
      << ","
      << "\"merge_peak_buffered_rows\":" << mergeStats.peakBufferedRows << ","
      << "\"checks_passed\":" << passed << ","
      << "\"checks_failed\":" << failed << "}\n";
  std::cout << "BENCH_dataframe.json written (group-by "
            << str::fixed(groupSpeedup, 1) << "x, percentiles "
            << str::fixed(pctSpeedup, 1) << "x, merge peak "
            << mergeStats.peakBufferedRows << " rows).\n";
  if (failed == 0) std::cout << "DATAFRAME ABLATION OK\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return reproduceAblation();
}
