// Experiment E11 — parallel campaign executor ablation.
//
// An 8-wide suite (eight regression tests with distinct concretized spec
// DAGs, two repeats each) is driven through Pipeline::runAll at --jobs 1,
// 2, 4 and 8.  The executor's output bytes are identical at every width
// (that is gated by cli_jobs_deterministic and the executor unit tests);
// what this bench quantifies is the cost model: simulated campaign
// makespan versus the serial campaign, and the single-flight invariant
// that each unique build key is built exactly once no matter how many
// campaigns share it.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "core/framework/pipeline.hpp"
#include "core/store/object_store.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

std::string freshStoreDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

RegressionTest syntheticTest(std::string name, std::string spec) {
  RegressionTest test;
  test.name = std::move(name);
  test.spackSpec = std::move(spec);
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "RESULT OK";
  test.perfPatterns = {{"fom", R"(FOM:\s+([0-9.]+))", Unit::kGFlopPerSec}};
  test.run = [](const RunContext&) {
    return RunOutput{"FOM: 42.0\nRESULT OK\n", 10.0, false, ""};
  };
  return test;
}

// Eight tests whose spack specs concretize to eight distinct DAGs, so
// the campaign carries eight unique build keys.
std::vector<RegressionTest> eightWideSuite() {
  return {
      syntheticTest("E11Stream", "stream%gcc"),
      syntheticTest("E11Hpgmg", "hpgmg%gcc +fv"),
      syntheticTest("E11BsOmp", "babelstream model=omp"),
      syntheticTest("E11BsSerial", "babelstream model=serial"),
      syntheticTest("E11BsRanges", "babelstream model=std-ranges"),
      syntheticTest("E11HpcgCsr", "hpcg operator=csr"),
      syntheticTest("E11HpcgMf", "hpcg operator=matrix-free"),
      syntheticTest("E11HpcgLfric", "hpcg operator=lfric"),
  };
}

struct CampaignCost {
  CampaignReport report;
  store::BuildCache::Stats cache;
  std::size_t results = 0;
};

CampaignCost runCampaign(int jobs) {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  store::ObjectStore store(
      freshStoreDir("rebench-e11-store-j" + std::to_string(jobs)));
  PipelineOptions options;
  options.numRepeats = 2;
  options.jobs = jobs;
  options.store = &store;
  Pipeline pipeline(systems, repo, options);
  const std::vector<RegressionTest> tests = eightWideSuite();
  const std::vector<std::string> targets{"archer2"};
  CampaignReport report;
  CampaignCost cost;
  cost.results = pipeline.runAll(tests, targets, nullptr, nullptr, &report).size();
  cost.report = report;
  cost.cache = pipeline.buildCache()->stats();
  return cost;
}

// Wall-clock of the whole campaign (synthetic run lambdas, so this is
// dominated by concretization + executor overhead, not payload).
void BM_CampaignWallClock(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCampaign(jobs));
  }
}
BENCHMARK(BM_CampaignWallClock)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void reproduceAblation() {
  AsciiTable table(
      "E11: parallel campaign executor, 8 distinct specs x 2 repeats on "
      "archer2 (simulated pipeline seconds)");
  table.setHeader({"jobs", "serial (s)", "makespan (s)", "speedup",
                   "unique builds", "deduped", "cache misses"});
  double serialBaseline = 0.0;
  double bestSpeedup = 0.0;
  CampaignCost last;
  for (const int jobs : {1, 2, 4, 8}) {
    const CampaignCost cost = runCampaign(jobs);
    if (jobs == 1) serialBaseline = cost.report.simulatedSerialSeconds;
    const double speedup =
        cost.report.simulatedMakespanSeconds > 0.0
            ? cost.report.simulatedSerialSeconds /
                  cost.report.simulatedMakespanSeconds
            : 0.0;
    bestSpeedup = std::max(bestSpeedup, speedup);
    table.addRow({std::to_string(jobs),
                  str::fixed(cost.report.simulatedSerialSeconds, 1),
                  str::fixed(cost.report.simulatedMakespanSeconds, 1),
                  str::fixed(speedup, 2) + "x",
                  std::to_string(cost.report.uniqueBuilds),
                  std::to_string(cost.report.dedupedBuilds),
                  std::to_string(cost.cache.misses)});
    last = cost;
  }
  std::cout << "\n" << table.render();
  std::cout << "\nSerial campaign cost is " << str::fixed(serialBaseline, 1)
            << " simulated seconds; the jobs=8 schedule reaches "
            << str::fixed(bestSpeedup, 2) << "x.\n";
  std::cout << (bestSpeedup >= 3.0 ? "PASS" : "FAIL")
            << ": >= 3x campaign speedup at jobs=8.\n";
  std::cout << (last.cache.misses == 8 && last.report.uniqueBuilds == 8
                    ? "PASS"
                    : "FAIL")
            << ": exactly one build per unique spec-DAG key (8 keys, "
            << last.cache.misses << " cache miss(es), "
            << last.report.dedupedBuilds << " deduped by single-flight).\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
