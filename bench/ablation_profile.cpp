// Experiment E15 (extension) — trace analytics & profiling engine.
//
// A large synthetic campaign trace (1024 stamped exec.worker spans with
// nested build/run children, spread over 8 virtual lanes, one in four
// blocked behind a single-flight follower wait) is pushed through every
// post-processing stage: JSONL parse, lane-schedule reconstruction,
// critical-path extraction, chrome trace-event export and trace diff.
// The microbenchmarks quantify per-stage cost; reproduceAblation()
// checks the invariants the paper's reproducibility argument rests on —
// the critical path length equals the profiled makespan exactly, a
// self-diff is empty, and every renderer is byte-stable on re-render.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "core/obs/trace.hpp"
#include "core/obs/trace_reader.hpp"
#include "core/postproc/chrome_export.hpp"
#include "core/postproc/critical_path.hpp"
#include "core/postproc/profile.hpp"
#include "core/util/strings.hpp"

namespace {

using namespace rebench;
using namespace rebench::postproc;

constexpr int kWorkers = 1024;
constexpr int kLanes = 8;

// One stamped worker span, shaped like the executor's output: nested
// build + run children, an optional single-flight follower wait, and
// post-hoc lane/sim_seconds annotations.
void addWorkerSpan(obs::Tracer& tracer, int index, double simSeconds,
                   bool blocked) {
  const std::string id = tracer.beginSpan("exec.worker");
  tracer.setAttr("campaign", std::to_string(index));
  tracer.setAttr("test", "E15Synthetic" + std::to_string(index % 16));
  tracer.setAttr("target", "archer2:compute");
  tracer.setAttr("repeat", std::to_string(index % 2));
  if (blocked) {
    tracer.beginSpan("store.singleflight");
    tracer.setAttr("key", "k" + std::to_string(index % 8));
    tracer.setAttr("role", "follower");
    tracer.clock().advance(0.5);
    tracer.endSpan();
  }
  tracer.beginSpan("build");
  tracer.clock().advance(simSeconds * 0.25);
  tracer.endSpan();
  tracer.beginSpan("run");
  tracer.clock().advance(simSeconds * 0.75);
  tracer.endSpan();
  tracer.endSpan();
  tracer.annotateCompleted(id, "lane", std::to_string(index % kLanes));
  tracer.annotateCompleted(id, "sim_seconds", str::fixed(simSeconds, 6));
}

std::string syntheticTraceJsonl() {
  obs::Tracer tracer;
  for (int i = 0; i < kWorkers; ++i) {
    // Deterministic but uneven durations so lanes finish at different
    // times and the critical path is a real longest chain.
    const double sim = 4.0 + static_cast<double>((i * 7) % 23);
    addWorkerSpan(tracer, i, sim, i % 4 == 0);
  }
  return tracer.toJsonl();
}

const std::string& traceJsonl() {
  static const std::string jsonl = syntheticTraceJsonl();
  return jsonl;
}

const obs::TraceFile& trace() {
  static const obs::TraceFile parsed = obs::parseTraceJsonl(traceJsonl());
  return parsed;
}

void BM_ParseTraceJsonl(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::parseTraceJsonl(traceJsonl()));
  }
}
BENCHMARK(BM_ParseTraceJsonl)->Unit(benchmark::kMillisecond);

void BM_ProfileTrace(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(profileTrace(trace()));
  }
}
BENCHMARK(BM_ProfileTrace)->Unit(benchmark::kMillisecond);

void BM_CriticalPath(benchmark::State& state) {
  const TraceProfile profile = profileTrace(trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractCriticalPath(trace(), profile));
  }
}
BENCHMARK(BM_CriticalPath)->Unit(benchmark::kMillisecond);

void BM_ChromeExport(benchmark::State& state) {
  const TraceProfile profile = profileTrace(trace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderChromeTrace(trace(), profile));
  }
}
BENCHMARK(BM_ChromeExport)->Unit(benchmark::kMillisecond);

void BM_TraceDiff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffTraces(trace(), trace()));
  }
}
BENCHMARK(BM_TraceDiff)->Unit(benchmark::kMillisecond);

void reproduceAblation() {
  const obs::TraceFile& file = trace();
  const TraceProfile profile = profileTrace(file);
  const CriticalPathReport critical = extractCriticalPath(file, profile);
  const TraceDiff self = diffTraces(file, file);

  std::cout << "\nE15: " << kWorkers << " worker spans over " << kLanes
            << " lanes -> makespan " << str::fixed(profile.makespanSeconds, 6)
            << " s, serial " << str::fixed(profile.serialSeconds, 6)
            << " s, critical path " << critical.steps.size() << " unit(s) on lane "
            << critical.lane << ".\n";
  std::cout << (critical.lengthSeconds == profile.makespanSeconds ? "PASS"
                                                                  : "FAIL")
            << ": critical path length equals profiled makespan exactly ("
            << str::fixed(critical.lengthSeconds, 6) << " s).\n";
  std::cout << (self.identical() && self.regressions() == 0 ? "PASS" : "FAIL")
            << ": self-diff reports identical traces with zero regressions.\n";
  const bool stable =
      renderProfile(profile) == renderProfile(profileTrace(file)) &&
      renderChromeTrace(file, profile) == renderChromeTrace(file, profile) &&
      profileJson(profile) == profileJson(profileTrace(file));
  std::cout << (stable ? "PASS" : "FAIL")
            << ": profile, JSON and chrome renderers are byte-stable on "
               "re-render.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
