// Experiment E9 — ablation of Principle 3 ("rebuild every run").
//
// The paper argues that cached binaries silently decouple the measured
// binary from the documented build steps.  This bench quantifies three
// workflows: always rebuilding, naively caching on the build plan alone
// (what ad-hoc scripts do), and the framework's content-addressed store
// with *verified reuse* — cache keys cover the concretized spec, the
// system environment fingerprint and the build plan, so a compiler
// module update invalidates the cache instead of hiding drift.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>

#include "core/concretizer/concretizer.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/store/build_cache.hpp"
#include "core/store/object_store.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

std::string freshStoreDir(const char* name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

void BM_BuildPlanExecution(benchmark::State& state) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  Concretizer concretizer(repo, systems.get("archer2").environment);
  const auto root = concretizer.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan plan = makeBuildPlan(*root);
  Builder builder(/*rebuildEveryRun=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(plan));
  }
}
BENCHMARK(BM_BuildPlanExecution);

// A cache hit still pays for a verified read: the blob is fetched from
// disk and rehashed before the record is trusted.
void BM_BuildCacheHit(benchmark::State& state) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  const SystemEnvironment& env = systems.get("archer2").environment;
  Concretizer concretizer(repo, env);
  const auto root = concretizer.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan plan = makeBuildPlan(*root);

  store::ObjectStore objectStore(freshStoreDir("rebench-bench-store"));
  store::BuildCache cache(objectStore, nullptr, nullptr);
  const std::string fingerprint =
      store::BuildCache::environmentFingerprint(env);
  Builder builder(/*rebuildEveryRun=*/true);
  builder.build(plan, &cache, fingerprint);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(plan, &cache, fingerprint));
  }
}
BENCHMARK(BM_BuildCacheHit);

void reproduceAblation() {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();

  // Phase 1: the original environment.
  SystemConfig csd3 = systems.get("csd3");
  Concretizer before(repo, csd3.environment);
  const auto specBefore = before.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan planBefore = makeBuildPlan(*specBefore);

  Builder rebuilding(/*rebuildEveryRun=*/true);
  Builder naiveCaching(/*rebuildEveryRun=*/false);
  store::ObjectStore objectStore(freshStoreDir("rebench-ablation-store"));
  store::BuildCache cache(objectStore, nullptr, nullptr);
  Builder verified(/*rebuildEveryRun=*/true);
  const std::string fpBefore =
      store::BuildCache::environmentFingerprint(csd3.environment);

  const int kRuns = 10;
  double rebuildCost = 0.0, naiveCost = 0.0, verifiedCost = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    rebuildCost += rebuilding.build(planBefore).buildSeconds;
    naiveCost += naiveCaching.build(planBefore).buildSeconds;
    verifiedCost += verified.build(planBefore, &cache, fpBefore).buildSeconds;
  }

  // Phase 2: the system's gcc module is upgraded (11.2.0 -> 12.1.0) and
  // the openmpi external is rebuilt against it — a routine maintenance
  // window on a real service.
  csd3.environment.compilers = {
      CompilerEntry{"gcc", Version::parse("12.1.0"), "gcc/12.1.0"}};
  for (ExternalEntry& ext : csd3.environment.externals) {
    if (ext.name == "openmpi") {
      ext.version = Version::parse("4.1.4");
      ext.origin = "openmpi/4.1.4";
      ext.compilerVersion = Version::parse("12.1.0");
    }
  }
  Concretizer after(repo, csd3.environment);
  const auto specAfter = after.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan planAfter = makeBuildPlan(*specAfter);
  const std::string fpAfter =
      store::BuildCache::environmentFingerprint(csd3.environment);

  const BuildRecord freshRecord = rebuilding.build(planAfter);
  // The naive cached workflow never re-concretizes: it happily reuses
  // the old binary, which no longer matches the system it runs on.
  const BuildRecord staleRecord = naiveCaching.build(planBefore);
  // The store workflow re-concretizes (cheap) and keys reuse on spec +
  // environment + plan: the maintenance window changes the key, the
  // lookup misses, and the binary is rebuilt for the current system.
  const BuildRecord verifiedRecord =
      verified.build(planAfter, &cache, fpAfter);

  AsciiTable table("Ablation (Principle 3): rebuild-every-run vs cached "
                   "binaries, hpgmg%gcc on csd3");
  table.setHeader(
      {"metric", "rebuild-every-run", "naive cache", "verified store"});
  table.addRow({"simulated build cost, 10 runs (s)",
                str::fixed(rebuildCost, 1), str::fixed(naiveCost, 1),
                str::fixed(verifiedCost, 1)});
  table.addRow({"binary id after maintenance",
                freshRecord.binaryId.substr(0, 12) + "...",
                staleRecord.binaryId.substr(0, 12) + "...",
                verifiedRecord.binaryId.substr(0, 12) + "..."});
  table.addRow({"matches current environment",
                freshRecord.rootHash == planAfter.rootHash ? "yes" : "NO",
                staleRecord.rootHash == planAfter.rootHash ? "yes" : "NO",
                verifiedRecord.rootHash == planAfter.rootHash ? "yes" : "NO"});
  std::cout << "\n" << table.render();

  std::cout << "\nDrift detection: spec DAG hash " << planBefore.rootHash
            << " (before) vs " << planAfter.rootHash
            << " (after maintenance).\n";
  if (staleRecord.rootHash != planAfter.rootHash) {
    std::cout << "The naively cached binary is provably stale: a perflog "
                 "entry carrying its binary id can no longer be reproduced "
                 "from the current system environment.\n";
  }
  std::cout << "Verified store: " << cache.stats().hits << " hit(s), "
            << cache.stats().misses
            << " miss(es); the post-maintenance lookup missed, so reuse "
               "cost "
            << str::fixed(verifiedCost / kRuns, 1)
            << " s/run (amortized) without ever serving a stale binary.\n";
  std::cout << "Object store holds " << objectStore.objectCount()
            << " build record(s) in " << objectStore.dir() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
