// Experiment E9 — ablation of Principle 3 ("rebuild every run").
//
// The paper argues that cached binaries silently decouple the measured
// binary from the documented build steps.  This bench quantifies both
// sides: the simulated cost of always rebuilding, and the drift a cached
// binary hides when the system environment changes under it (a compiler
// module update), which rebuild-every-run detects via the binary id.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/concretizer/concretizer.hpp"
#include "core/pkg/build_plan.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

namespace {

using namespace rebench;

void BM_BuildPlanExecution(benchmark::State& state) {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();
  Concretizer concretizer(repo, systems.get("archer2").environment);
  const auto root = concretizer.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan plan = makeBuildPlan(*root);
  Builder builder(/*rebuildEveryRun=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(plan));
  }
}
BENCHMARK(BM_BuildPlanExecution);

void reproduceAblation() {
  const PackageRepository repo = builtinRepository();
  const SystemRegistry systems = builtinSystems();

  // Phase 1: the original environment.
  SystemConfig csd3 = systems.get("csd3");
  Concretizer before(repo, csd3.environment);
  const auto specBefore = before.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan planBefore = makeBuildPlan(*specBefore);

  Builder rebuilding(/*rebuildEveryRun=*/true);
  Builder caching(/*rebuildEveryRun=*/false);

  const int kRuns = 10;
  double rebuildCost = 0.0, cachedCost = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    rebuildCost += rebuilding.build(planBefore).buildSeconds;
    cachedCost += caching.build(planBefore).buildSeconds;
  }
  const BuildRecord cachedRecord = caching.build(planBefore);

  // Phase 2: the system's gcc module is upgraded (11.2.0 -> 12.1.0) and
  // the openmpi external is rebuilt against it — a routine maintenance
  // window on a real service.
  csd3.environment.compilers = {
      CompilerEntry{"gcc", Version::parse("12.1.0"), "gcc/12.1.0"}};
  for (ExternalEntry& ext : csd3.environment.externals) {
    if (ext.name == "openmpi") {
      ext.version = Version::parse("4.1.4");
      ext.origin = "openmpi/4.1.4";
      ext.compilerVersion = Version::parse("12.1.0");
    }
  }
  Concretizer after(repo, csd3.environment);
  const auto specAfter = after.concretize(Spec::parse("hpgmg%gcc")).root;
  const BuildPlan planAfter = makeBuildPlan(*specAfter);

  const BuildRecord freshRecord = rebuilding.build(planAfter);
  // The cached workflow never re-concretizes: it happily reuses the old
  // binary, which no longer matches the system it runs on.
  const BuildRecord staleRecord = caching.build(planBefore);

  AsciiTable table("Ablation (Principle 3): rebuild-every-run vs cached "
                   "binaries, hpgmg%gcc on csd3");
  table.setHeader({"metric", "rebuild-every-run", "cached"});
  table.addRow({"simulated build cost, 10 runs (s)",
                str::fixed(rebuildCost, 1), str::fixed(cachedCost, 1)});
  table.addRow({"binary id after maintenance",
                freshRecord.binaryId.substr(0, 12) + "...",
                staleRecord.binaryId.substr(0, 12) + "..."});
  table.addRow({"matches current environment",
                freshRecord.rootHash == planAfter.rootHash ? "yes" : "NO",
                staleRecord.rootHash == planAfter.rootHash ? "yes" : "NO"});
  std::cout << "\n" << table.render();

  std::cout << "\nDrift detection: spec DAG hash " << planBefore.rootHash
            << " (before) vs " << planAfter.rootHash
            << " (after maintenance).\n";
  if (staleRecord.rootHash != planAfter.rootHash) {
    std::cout << "The cached binary is provably stale: a perflog entry "
                 "carrying its binary id can no longer be reproduced from "
                 "the current system environment.  Rebuild-every-run pays "
              << str::fixed(rebuildCost / kRuns, 1)
              << " s/run (simulated) to make that impossible.\n";
  }
  std::cout << "Builder cache size (distinct binaries ever built): "
            << caching.cacheSize() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
