// Experiments E3/E4 — Table 2 and Equation 1 of the paper.
//
// Runs the four HPCG variants through the full framework pipeline on the
// two Table 2 platforms — Intel Cascade Lake (Isambard MACS, 40 MPI
// ranks) and AMD Rome (ARCHER2, 128 MPI ranks) — and prints the GFlop/s
// table plus the implementation-vs-algorithm efficiency ratios E_I and
// E_A from Equation 1.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "core/framework/pipeline.hpp"
#include "core/postproc/efficiency.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpcg/driver.hpp"
#include "hpcg/testcase.hpp"

namespace {

using namespace rebench;

// ---- microbenchmarks: the operator kernels natively ----------------------

void BM_OperatorApply(benchmark::State& state) {
  const auto variant = static_cast<hpcg::Variant>(state.range(0));
  hpcg::Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = 24;
  const auto A = hpcg::makeOperator(variant, g);
  std::vector<double> x(A->n(), 1.0), y(A->n());
  for (auto _ : state) {
    A->apply(x, hpcg::HaloView{}, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(std::string(hpcg::variantName(variant)));
  state.SetItemsProcessed(state.iterations() * A->n());
}
BENCHMARK(BM_OperatorApply)->DenseRange(0, 3);

void BM_Symgs(benchmark::State& state) {
  const auto variant = static_cast<hpcg::Variant>(state.range(0));
  hpcg::Geometry g;
  g.nx = g.ny = g.nzLocal = g.nzGlobal = 24;
  const auto A = hpcg::makeOperator(variant, g);
  std::vector<double> r(A->n(), 1.0), z(A->n());
  for (auto _ : state) {
    A->precondition(r, z);
    benchmark::DoNotOptimize(z.data());
  }
  state.SetLabel(std::string(hpcg::variantName(variant)));
  state.SetItemsProcessed(state.iterations() * A->n());
}
BENCHMARK(BM_Symgs)->DenseRange(0, 3);

// ---- the Table 2 reproduction ---------------------------------------------

struct Table2Platform {
  const char* target;
  const char* label;
  int ranks;
};
constexpr Table2Platform kPlatforms[] = {
    {"isambard-macs:cascadelake", "Intel Cascade Lake", 40},
    {"archer2", "AMD Rome", 128},
};

constexpr hpcg::Variant kVariants[] = {
    hpcg::Variant::kCsr, hpcg::Variant::kCsrOpt, hpcg::Variant::kMatrixFree,
    hpcg::Variant::kLfric};

const char* variantRowLabel(hpcg::Variant v) {
  switch (v) {
    case hpcg::Variant::kCsr: return "Original (CSR)";
    case hpcg::Variant::kCsrOpt: return "Intel-avx2 (CSR)";
    case hpcg::Variant::kMatrixFree: return "Matrix-free";
    case hpcg::Variant::kLfric: return "LFRic";
  }
  return "?";
}

void reproduceTable2() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  PerfLog perflog;

  // results[variant][platform label] = GFlop/s (nullopt = N/A)
  std::map<hpcg::Variant, std::map<std::string, std::optional<double>>>
      results;
  for (const Table2Platform& platform : kPlatforms) {
    for (hpcg::Variant variant : kVariants) {
      hpcg::HpcgTestOptions options;
      options.variant = variant;
      options.numTasks = platform.ranks;
      options.gridSize = 104;
      const TestRunResult run = pipeline.runOne(
          hpcg::makeHpcgTest(options), platform.target, &perflog);
      if (run.passed) {
        results[variant][platform.label] = run.foms.at("GFLOPs");
      } else {
        results[variant][platform.label] = std::nullopt;
      }
    }
  }

  AsciiTable table(
      "Table 2: Results for different HPCG variants on different "
      "architectures in GFlop/s (MPI only, single node; 40 ranks on "
      "Cascade Lake, 128 on Rome)");
  table.setHeader({"HPCG Variant", "Intel Cascade Lake", "AMD Rome"});
  for (hpcg::Variant variant : kVariants) {
    std::vector<std::string> row{variantRowLabel(variant)};
    for (const Table2Platform& platform : kPlatforms) {
      const auto& cell = results[variant][platform.label];
      row.push_back(cell ? str::fixed(*cell, 1) : "N/A");
    }
    table.addRow(row);
  }
  std::cout << "\n" << table.render();

  // Equation 1: E = VAR / ORIG.
  auto ratio = [&](hpcg::Variant v, const char* platform) {
    const auto& orig = results[hpcg::Variant::kCsr][platform];
    const auto& var = results[v][platform];
    return (orig && var) ? applicationEfficiency(*var, *orig) : 0.0;
  };
  AsciiTable eq1("Equation 1 efficiencies E = VAR/ORIG:");
  eq1.setHeader({"ratio", "Intel Cascade Lake", "AMD Rome", "paper (CLX)",
                 "paper (Rome)"});
  eq1.addRow({"E_I (Intel-avx2/CSR)",
              str::fixed(ratio(hpcg::Variant::kCsrOpt, "Intel Cascade Lake"),
                         3),
              "N/A", "1.625", "N/A"});
  eq1.addRow({"E_A (matrix-free/CSR)",
              str::fixed(
                  ratio(hpcg::Variant::kMatrixFree, "Intel Cascade Lake"), 3),
              str::fixed(ratio(hpcg::Variant::kMatrixFree, "AMD Rome"), 3),
              "2.125", "3.168"});
  std::cout << "\n" << eq1.render();
  std::cout << "\nperflog entries: " << perflog.size() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceTable2();
  return 0;
}
