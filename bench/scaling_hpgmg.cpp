// Experiment E12 (extension, §2.4) — scaling plots.
//
// §2.4 names "scaling and time-series regression plots" as the framework's
// planned simplified configurations.  This bench runs HPGMG-FV weak- and
// strong-scaling sweeps on the ARCHER2 model and renders the plots the
// post-processing library produces from the resulting perflogs.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "core/postproc/plot.hpp"
#include "core/sysconfig/system_config.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpgmg/driver.hpp"

namespace {

using namespace rebench;

void BM_ModeledSolve(benchmark::State& state) {
  const MachineModel& rome = builtinMachines().get("rome-7742");
  hpgmg::HpgmgConfig config;
  config.numRanks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hpgmg::runModeled(config, rome, 0.0458, 5.35e-6, 16));
  }
}
BENCHMARK(BM_ModeledSolve)->Arg(8)->Arg(64);

const PartitionConfig& archer2Partition() {
  static const SystemRegistry systems = builtinSystems();
  return *systems.resolve("archer2").second;
}

void weakScaling() {
  const MachineModel& rome = builtinMachines().get("rome-7742");
  const PartitionConfig& part = archer2Partition();

  AsciiTable table(
      "Weak scaling on the ARCHER2 model (8 boxes/rank fixed, 2 "
      "ranks/node):");
  table.setHeader({"ranks", "nodes", "DOF", "l0 MDOF/s", "efficiency"});
  Series measured{"measured", {}, {}};
  Series ideal{"ideal", {}, {}};
  double ratePerRankAtBase = 0.0;
  for (int ranks : {2, 4, 8, 16, 32, 64}) {
    hpgmg::HpgmgConfig config;
    config.numRanks = ranks;
    const hpgmg::HpgmgResult result = hpgmg::runModeled(
        config, rome, part.platformEfficiency, part.launchOverheadSeconds,
        16);
    const double rate = result.foms[0].mdofPerSec;
    if (ranks == 2) ratePerRankAtBase = rate / 2.0;
    const double efficiency = rate / (ratePerRankAtBase * ranks);
    table.addRow({std::to_string(ranks), std::to_string(config.numNodes()),
                  std::to_string(result.foms[0].dof),
                  str::fixed(rate, 1),
                  str::fixed(efficiency * 100.0, 1) + "%"});
    measured.x.push_back(std::log2(ranks));
    measured.y.push_back(rate);
    ideal.x.push_back(std::log2(ranks));
    ideal.y.push_back(ratePerRankAtBase * ranks);
  }
  std::cout << "\n" << table.render();
  std::cout << "\n"
            << renderScalingPlot({ideal, measured},
                                 "weak scaling: l0 MDOF/s vs log2(ranks)",
                                 48, 12);
}

void strongScaling() {
  const MachineModel& rome = builtinMachines().get("rome-7742");
  const PartitionConfig& part = archer2Partition();

  AsciiTable table(
      "Strong scaling on the ARCHER2 model (64 boxes total, split across "
      "ranks):");
  table.setHeader({"ranks", "boxes/rank", "l0 time (s)", "speedup",
                   "node efficiency"});
  // Baseline at one full node (2 ranks): two ranks sharing a node also
  // share its memory bandwidth, so per-rank "speedup" only starts once
  // nodes are added.
  double baseTime = 0.0;
  for (int ranks : {2, 4, 8, 16, 32, 64}) {
    hpgmg::HpgmgConfig config;
    config.numRanks = ranks;
    config.targetBoxesPerRank = 64 / ranks;
    const hpgmg::HpgmgResult result = hpgmg::runModeled(
        config, rome, part.platformEfficiency, part.launchOverheadSeconds,
        16);
    const double time = result.foms[0].seconds;
    if (ranks == 2) baseTime = time;
    const double speedup = baseTime / time;
    const double nodesRatio = config.numNodes();  // vs 1-node baseline
    table.addRow({std::to_string(ranks),
                  std::to_string(config.targetBoxesPerRank),
                  str::fixed(time, 4), str::fixed(speedup, 2),
                  str::fixed(speedup / nodesRatio * 100.0, 1) + "%"});
  }
  std::cout << "\n" << table.render();
  std::cout << "\nThe strong-scaling efficiency decays as collective "
               "overheads (log2 ranks) eat the shrinking per-rank work — "
               "the same effect behind Table 4's l2 column.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  weakScaling();
  strongScaling();
  return 0;
}
