// Experiment E16 (extension) — longitudinal performance history.
//
// A synthetic 100k-record history (1000 hash-chained segments of 100
// records each, 4 interleaved FOM series with a seeded mean shift at
// 60%) is pushed through the history subsystem end to end: segment
// serialization/parse, store-backed append (put + pin + head-ref
// advance), full-chain query, and sliding-window changepoint detection.
// The microbenchmarks quantify per-stage cost; reproduceAblation()
// checks the invariants `rebench history` rests on — global sequence
// numbers stay monotone, the seeded regime shift is flagged within one
// window, pinned segments survive LRU eviction pressure, and index
// compaction round-trips the chain byte-exactly — then writes
// BENCH_history.json, the first point of the repo's perf trajectory
// (ROADMAP item 4).
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/history/changepoint.hpp"
#include "core/history/history.hpp"
#include "core/store/object_store.hpp"
#include "core/util/error.hpp"
#include "core/util/strings.hpp"

namespace {

using namespace rebench;
namespace fs = std::filesystem;

constexpr int kSegments = 1000;
constexpr int kRecordsPerSegment = 100;
constexpr int kSeries = 4;
constexpr int kTotalRecords = kSegments * kRecordsPerSegment;
// Global record index where every series' mean drops from ~100 to ~80.
constexpr int kShiftAt = (kTotalRecords / kSeries) * 6 / 10;

/// Deterministic synthetic records: 4 series round-robin, small
/// in-regime wobble, one seeded mean shift per series.
std::vector<history::HistoryRecord> syntheticSegment(int segment) {
  std::vector<history::HistoryRecord> records;
  records.reserve(kRecordsPerSegment);
  for (int i = 0; i < kRecordsPerSegment; ++i) {
    const int global = segment * kRecordsPerSegment + i;
    const int series = global % kSeries;
    const int point = global / kSeries;
    history::HistoryRecord record;
    record.test = "E16Synthetic" + std::to_string(series);
    record.target = "archer2:compute";
    record.fom = "Triad";
    record.manifestHash = "0123456789abcdef";
    record.envFingerprint = "fedcba9876543210";
    record.specHash = "00ff00ff00ff00ff";
    const double base = point < kShiftAt ? 100.0 : 80.0;
    record.mean = base + 0.1 * static_cast<double>(point % 7);
    record.min = record.mean - 0.5;
    record.max = record.mean + 0.5;
    record.repeats = 3;
    record.simTimestamp = static_cast<double>(global) * 12.5;
    records.push_back(std::move(record));
  }
  return records;
}

/// Scratch store directory, wiped on (re)use.
std::string scratchDir(const std::string& suffix) {
  const fs::path dir =
      fs::temp_directory_path() / ("rebench-bench-history-" + suffix);
  fs::remove_all(dir);
  return dir.string();
}

void BM_SerializeSegment(benchmark::State& state) {
  const auto records = syntheticSegment(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::serializeSegment(records, "", 0, 0));
  }
}
BENCHMARK(BM_SerializeSegment);

void BM_ParseSegment(benchmark::State& state) {
  const std::string blob =
      history::serializeSegment(syntheticSegment(0), "", 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::parseSegment(blob));
  }
}
BENCHMARK(BM_ParseSegment);

void BM_AppendSegment(benchmark::State& state) {
  store::ObjectStore store(scratchDir("append"));
  history::HistoryIndex index(store);
  int segment = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.appendSegment(syntheticSegment(segment++ % kSegments)));
  }
}
BENCHMARK(BM_AppendSegment)->Unit(benchmark::kMillisecond);

void BM_Changepoint(benchmark::State& state) {
  std::vector<double> series;
  series.reserve(kTotalRecords / kSeries);
  for (int point = 0; point < kTotalRecords / kSeries; ++point) {
    const double base = point < kShiftAt ? 100.0 : 80.0;
    series.push_back(base + 0.1 * static_cast<double>(point % 7));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history::detectChangepoints(series, {}));
  }
}
BENCHMARK(BM_Changepoint)->Unit(benchmark::kMillisecond);

void reproduceAblation() {
  using Clock = std::chrono::steady_clock;
  int passed = 0;
  int failed = 0;
  auto check = [&](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS" : "FAIL") << ": " << what << "\n";
    (ok ? passed : failed) += 1;
  };

  const std::string dir = scratchDir("ablation");
  store::ObjectStore store(dir);
  history::HistoryIndex index(store);

  const auto appendStart = Clock::now();
  for (int segment = 0; segment < kSegments; ++segment) {
    index.appendSegment(syntheticSegment(segment));
  }
  const double appendSeconds =
      std::chrono::duration<double>(Clock::now() - appendStart).count();

  const auto queryStart = Clock::now();
  const auto all = index.readAll();
  const auto one = index.query("E16Synthetic0");
  const double querySeconds =
      std::chrono::duration<double>(Clock::now() - queryStart).count();

  bool monotone = all.size() == kTotalRecords;
  for (std::size_t i = 0; i < all.size(); ++i) {
    monotone = monotone && all[i].seq == i;
  }
  check(monotone, "100k records read back with monotone global sequence");
  check(one.size() == kTotalRecords / kSeries,
        "per-series query returns exactly its " +
            std::to_string(kTotalRecords / kSeries) + " records");

  std::vector<double> means;
  means.reserve(one.size());
  for (const auto& record : one) means.push_back(record.mean);
  const auto cpStart = Clock::now();
  const auto flags = history::detectChangepoints(means, {});
  const double cpSeconds =
      std::chrono::duration<double>(Clock::now() - cpStart).count();
  bool flaggedAtShift = false;
  for (const auto& flag : flags) {
    if (flag.index >= kShiftAt - 3 && flag.index <= kShiftAt + 3 &&
        flag.shift < 0.0) {
      flaggedAtShift = true;
    }
  }
  check(flaggedAtShift,
        "seeded mean shift at point " + std::to_string(kShiftAt) +
            " is flagged within one window");

  // Pinned segments must survive LRU pressure: reopen capped, then shove
  // junk through until evictions happen.
  {
    store::ObjectStore capped(dir, {.maxBytes = store.totalBytes() + 4096});
    for (int i = 0; i < 64; ++i) {
      capped.put("junk-" + std::to_string(i) + std::string(4096, 'x'));
    }
    history::HistoryIndex cappedIndex(capped);
    bool intact = true;
    try {
      intact = cappedIndex.readAll().size() == kTotalRecords;
    } catch (const Error&) {
      intact = false;
    }
    check(intact && capped.stats().evictions > 0,
          "history chain survives LRU eviction pressure (pinned segments)");
  }

  // Compaction must preserve the chain byte-exactly across reopen.
  {
    store::ObjectStore compacting(dir);
    compacting.compactIndex();
    store::ObjectStore reopened(dir);
    history::HistoryIndex reopenedIndex(reopened);
    const auto after = reopenedIndex.readAll();
    bool same = after.size() == all.size();
    for (std::size_t i = 0; same && i < after.size(); ++i) {
      same = after[i].seq == all[i].seq && after[i].mean == all[i].mean &&
             after[i].test == all[i].test;
    }
    check(same, "index compaction round-trips the chain exactly");
  }

  std::ofstream out("BENCH_history.json");
  out << "{\"schema\":\"rebench.bench_history/1\","
      << "\"records\":" << kTotalRecords << ","
      << "\"segments\":" << kSegments << ","
      << "\"series\":" << kSeries << ","
      << "\"append_records_per_s\":"
      << str::fixed(kTotalRecords / appendSeconds, 1) << ","
      << "\"query_records_per_s\":"
      << str::fixed((all.size() + one.size()) / querySeconds, 1) << ","
      << "\"changepoint_points_per_s\":"
      << str::fixed(means.size() / cpSeconds, 1) << ","
      << "\"checks_passed\":" << passed << ","
      << "\"checks_failed\":" << failed << "}\n";
  std::cout << "BENCH_history.json written (append "
            << str::fixed(kTotalRecords / appendSeconds, 0)
            << " rec/s, query "
            << str::fixed((all.size() + one.size()) / querySeconds, 0)
            << " rec/s, changepoint "
            << str::fixed(means.size() / cpSeconds, 0) << " pts/s).\n";

  fs::remove_all(dir);
  fs::remove_all(scratchDir("append"));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  reproduceAblation();
  return 0;
}
