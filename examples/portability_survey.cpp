// Performance-portability survey (the §3.1 workload): sweep the
// BabelStream programming models across every platform and analyse the
// result with the Pennycook PP metric — the kind of study the paper says
// took 18-24 FTE-months by hand and about a day with the framework.
//
//   $ ./portability_survey            # all models, all platforms
//   $ ./portability_survey omp sycl   # only the named models
#include <iostream>
#include <set>
#include <string>

#include "babelstream/run.hpp"
#include "babelstream/testcase.hpp"
#include "core/framework/pipeline.hpp"
#include "core/postproc/efficiency.hpp"
#include "core/postproc/plot.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"

using namespace rebench;

int main(int argc, char** argv) {
  std::set<std::string> wanted;
  for (int i = 1; i < argc; ++i) wanted.insert(argv[i]);

  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);
  PerfLog perflog;

  struct Platform {
    const char* target;
    const char* machineId;
  };
  constexpr Platform kPlatforms[] = {
      {"isambard-macs:cascadelake", "clx-6230"},
      {"isambard:xci", "thunderx2"},
      {"noctua2", "milan-7763"},
      {"archer2", "rome-7742"},
      {"isambard-macs:volta", "v100"},
  };

  DataFrame::StringColumn modelCol, platformCol;
  DataFrame::NumericColumn effCol;

  for (const babelstream::ProgrammingModel& model :
       babelstream::figure2Models()) {
    if (!wanted.empty() && !wanted.contains(model.id)) continue;

    std::vector<EfficiencyObservation> observations;
    for (const Platform& platform : kPlatforms) {
      babelstream::BabelstreamTestOptions options;
      options.model = model.id;
      options.ntimes = 50;
      const TestRunResult result = pipeline.runOne(
          babelstream::makeBabelstreamTest(options), platform.target,
          &perflog);
      const MachineModel& m = builtinMachines().get(platform.machineId);
      std::optional<double> eff;
      if (result.passed) {
        eff = architecturalEfficiency(result.foms.at("Triad") / 1e3,
                                      m.peakBandwidthGBs);
        modelCol.push_back(model.rowLabel);
        platformCol.push_back(platform.target);
        effCol.push_back(*eff);
      }
      observations.push_back({platform.target, eff});
    }
    const PortabilityReport report = analyzePortability(observations);
    std::cout << str::padRight(model.rowLabel, 14) << " PP="
              << str::fixed(report.pp, 3) << "  ("
              << report.supportedPlatforms << "/"
              << report.totalPlatforms << " platforms";
    if (report.supportedPlatforms > 0) {
      std::cout << ", eff " << str::fixed(report.minEfficiency * 100, 0)
                << "-" << str::fixed(report.maxEfficiency * 100, 0) << "%";
    }
    std::cout << ")\n";
  }

  DataFrame frame;
  frame.addStrings("model", std::move(modelCol));
  frame.addStrings("platform", std::move(platformCol));
  frame.addNumeric("efficiency", std::move(effCol));
  std::cout << "\n"
            << renderHeatmap(frame.pivot("model", "platform", "efficiency"),
                             {.title = "Triad efficiency by model x "
                                       "platform ('*' = does not run)"});
  std::cout << "\nperflog rows collected: " << perflog.size() << "\n";
  return 0;
}
