// Energy-aware benchmarking (the paper's §4 future work, implemented):
// run the same benchmark across systems, capture power/energy telemetry
// alongside the performance FOM, and rank platforms by energy-to-solution
// — plus the contention audit that tells you when background traffic may
// have perturbed a measurement.
//
//   $ ./energy_aware
#include <iostream>

#include "core/framework/pipeline.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpgmg/testcase.hpp"

using namespace rebench;

int main() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  const RegressionTest test = hpgmg::makeHpgmgTest({});

  AsciiTable table(
      "HPGMG-FV: performance AND energy, per system (8 tasks, args '7 8')");
  table.setHeader({"system", "l0 MDOF/s", "energy (kJ)", "mean power (W)",
                   "MDOF/J", "contended"});

  struct Row {
    std::string system;
    double mdofPerJoule;
  };
  std::vector<Row> ranking;

  for (const char* target :
       {"archer2", "cosma8", "csd3", "isambard-macs:cascadelake"}) {
    const TestRunResult result = pipeline.runOne(test, target);
    if (!result.passed || result.telemetry.empty()) {
      table.addRow({target, "failed", "-", "-", "-", "-"});
      continue;
    }
    const double joules = result.telemetry.energyJoules();
    const double totalMdof =
        result.foms.at("l0") * result.telemetry.duration();
    const double mdofPerJoule = totalMdof / joules;
    table.addRow({result.system, str::fixed(result.foms.at("l0"), 2),
                  str::fixed(joules / 1e3, 2),
                  str::fixed(result.telemetry.meanPowerWatts(), 0),
                  str::fixed(mdofPerJoule, 3),
                  std::to_string(result.contentionFlags.size()) + "/" +
                      std::to_string(result.telemetry.samples.size())});
    ranking.push_back({result.system, mdofPerJoule});
  }
  std::cout << table.render();

  std::sort(ranking.begin(), ranking.end(),
            [](const Row& a, const Row& b) {
              return a.mdofPerJoule > b.mdofPerJoule;
            });
  std::cout << "\nEnergy-to-solution ranking (work per joule, node-level "
               "power model):\n";
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    std::cout << "  " << i + 1 << ". " << ranking[i].system << " ("
              << str::fixed(ranking[i].mdofPerJoule, 3) << " MDOF/J)\n";
  }
  std::cout << "\nNote how the fastest system is not automatically the "
               "most efficient once power enters the figure of merit — "
               "the kind of analysis Principle 1 enables and raw runtime "
               "hides.\n";
  return 0;
}
