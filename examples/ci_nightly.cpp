// The CI pipeline of the paper's conclusion, end to end: a simulated week
// of nightly suite runs across systems, appending to per-system perflogs,
// followed by the analysis battery — hygiene audit, summary statistics,
// and regression detection — that §4 wants running "as part of a CI
// pipeline ... to measure and track performance over time".
//
//   $ ./ci_nightly
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/framework/pipeline.hpp"
#include "core/postproc/hygiene.hpp"
#include "core/postproc/regression.hpp"
#include "core/postproc/stats.hpp"
#include "core/util/rng.hpp"
#include "core/util/strings.hpp"
#include "suite/builtin_suite.hpp"

using namespace rebench;

int main() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  // Tonight's selection: the OpenMP BabelStream row, like the §3.1 demo.
  const std::vector<RegressionTest> tests = builtinSuite().select("omp");
  const std::string perflogPath =
      (std::filesystem::temp_directory_path() / "ci_nightly.log").string();
  std::remove(perflogPath.c_str());
  PerfLog perflog(perflogPath);

  const int kNights = 7;
  std::cout << "running " << tests.size() << " test(s) x 2 systems x "
            << kNights << " nights...\n";
  for (int night = 0; night < kNights; ++night) {
    for (const char* target : {"archer2", "csd3"}) {
      for (const RegressionTest& test : tests) {
        // Each night is a fresh repeat: fresh run-to-run noise.
        pipeline.runOne(test, target, &perflog, night);
      }
    }
  }

  const std::vector<PerfLogEntry> entries = PerfLog::readFile(perflogPath);
  std::cout << "\n1. hygiene audit (Bailey / Hoefler-Belli):\n";
  std::cout << renderHygieneReport(auditPerflog(entries));

  std::cout << "\n2. per-series statistics (night-to-night variability):\n";
  PerfHistory history;
  history.addAll(entries);
  for (const SeriesKey& key : history.keys()) {
    if (key.fomName != "Triad") continue;
    std::vector<double> values;
    for (const HistoryPoint& point : history.series(key)) {
      values.push_back(point.value / 1.0e3);  // GB/s
    }
    std::cout << "  " << key.toString() << ": "
              << renderStats(summarize(values)) << " GB/s\n";
  }

  std::cout << "\n3. regression detection:\n";
  const auto events = history.detect();
  if (events.empty()) {
    std::cout << "  no regressions across " << kNights
              << " nights — the gate passes.\n";
  }
  for (const RegressionEvent& event : events) {
    std::cout << "  REGRESSION " << event.detail << "\n";
  }

  std::cout << "\nperflog retained at " << perflogPath
            << " — feed it to `rebench report/history/audit/compare`.\n";
  return events.empty() ? 0 : 1;
}
