// Supercomputing-provision survey (the §3.3 workload): run the same
// benchmark, in the same configuration, on every configured system with a
// single loop — the "single workflow" §3.3 demonstrates — and assimilate
// the per-system perflogs afterwards.
//
//   $ ./multi_system_survey
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/framework/pipeline.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/postproc/plot.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpgmg/testcase.hpp"

using namespace rebench;

int main() {
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  Pipeline pipeline(systems, repo);

  // The appendix invocation, verbatim semantics:
  //   reframe -c .../hpgmg -r -J'--qos=standard' --system archer2
  //     -S spack_spec=hpgmg%gcc --setvar=num_cpus_per_task=8
  //     --setvar=num_tasks_per_node=2 --setvar=num_tasks=8
  const RegressionTest test = hpgmg::makeHpgmgTest({});

  const auto tmp = std::filesystem::temp_directory_path();
  std::vector<std::string> perflogPaths;

  for (const char* target :
       {"archer2", "cosma8", "csd3", "isambard-macs:cascadelake"}) {
    const std::string path =
        (tmp / (std::string("survey_") +
                str::replaceAll(target, ":", "_") + ".log"))
            .string();
    std::remove(path.c_str());
    PerfLog log(path);  // each system writes its own perflog
    const TestRunResult result = pipeline.runOne(test, target, &log);
    std::cout << str::padRight(target, 28)
              << (result.passed ? "ok    " : "FAILED")
              << "  job=" << result.jobId
              << "  launch: " << result.launchCommand << "\n";
    perflogPaths.push_back(path);
  }

  // Cross-system assimilation: concatenate the isolated perflogs.
  const DataFrame frame = assimilatePerflogs(perflogPaths);
  AsciiTable table("\nHPGMG-FV figures of merit (10^6 DOF/s):");
  table.setHeader({"System", "l0", "l1", "l2"});
  std::vector<std::string> seen;
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    const std::string& system = frame.strings("system")[i];
    if (std::find(seen.begin(), seen.end(), system) != seen.end()) continue;
    seen.push_back(system);
    const DataFrame rows = frame.filterEquals("system", system);
    auto fom = [&rows](const char* name) {
      const DataFrame cell = rows.filterEquals("fom", name);
      return cell.empty() ? std::string("-")
                          : str::fixed(cell.numeric("value")[0], 2);
    };
    table.addRow({system, fom("l0"), fom("l1"), fom("l2")});
  }
  std::cout << table.render();

  // Scaling view across the three problem scales.
  std::vector<Series> series;
  for (const std::string& system : seen) {
    Series s;
    s.name = system;
    const DataFrame rows = frame.filterEquals("system", system);
    for (int level = 0; level < 3; ++level) {
      const DataFrame cell =
          rows.filterEquals("fom", "l" + std::to_string(level));
      if (cell.empty()) continue;
      s.x.push_back(level);
      s.y.push_back(cell.numeric("value")[0]);
    }
    series.push_back(std::move(s));
  }
  std::cout << "\n"
            << renderScalingPlot(series,
                                 "rate (MDOF/s) vs problem scale "
                                 "(0=full, 2=1/64)",
                                 50, 12);

  std::cout << "\nSame architecture, different platform: the two Cascade "
               "Lake systems differ by ~4x — §3.3's motivation for "
               "cross-system regression testing.\n";
  for (const std::string& path : perflogPaths) std::remove(path.c_str());
  return 0;
}
