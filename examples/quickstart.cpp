// Quickstart: define a benchmark, run it through the reproducible
// pipeline on two systems, and read the results back from the perflog.
//
// This is the "hello world" of the framework: it shows the separation the
// paper's methodology prescribes — the *benchmark description* below never
// mentions schedulers, launchers, compilers or module files; all of that
// lives in the system configuration and is applied by the pipeline.
//
//   $ ./quickstart
#include <iostream>

#include "core/framework/pipeline.hpp"
#include "core/obs/trace.hpp"
#include "core/postproc/perflog_reader.hpp"
#include "core/util/table.hpp"

using namespace rebench;

int main() {
  // 1. A benchmark description (the ReFrame-class equivalent).  The body
  //    here is a stand-in "application" that reports a fake bandwidth; see
  //    the other examples for real benchmark bodies.
  RegressionTest test;
  test.name = "QuickstartStream";
  test.spackSpec = "stream%gcc";          // what to build (Principle 2-4)
  test.numTasks = 1;
  test.numTasksPerNode = 1;
  test.sanityPattern = "Solution Validates";          // is the output valid?
  test.perfPatterns = {                               // how to read the FOM
      {"Triad", R"(Triad:\s+([0-9.]+))", Unit::kMBperSec},
  };
  test.run = [](const RunContext& ctx) {
    // The pipeline hands the "binary" its allocation and concretized spec.
    std::string out = "STREAM version $Revision: 5.10 $\n";
    out += "Triad: " + std::to_string(100000.0 + 1000.0 *
                                      ctx.allocation.cpusPerTask) +
           " MB/s\n";
    out += "Solution Validates\n";
    return RunOutput{out, /*elapsedSeconds=*/12.0};
  };

  // 2. Run it on two systems.  Everything system-specific — SLURM account
  //    flags, srun vs mpirun, gcc 11.2.0 vs 9.2.0 — comes from the
  //    registry, not from the test.
  const SystemRegistry systems = builtinSystems();
  const PackageRepository repo = builtinRepository();
  // Attach the observability hooks: every stage of both runs below lands
  // in quickstart_trace.jsonl (deterministic — see `rebench trace-report`).
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  PipelineOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  Pipeline pipeline(systems, repo, options);
  PerfLog perflog;

  for (const char* target : {"archer2", "isambard-macs:cascadelake"}) {
    const TestRunResult result = pipeline.runOne(test, target, &perflog);
    std::cout << "== " << target << " ==\n";
    std::cout << "concretized: " << result.concreteSpec->shortForm() << "\n";
    std::cout << "binary id:   " << result.build.binaryId.substr(0, 16)
              << "...\n";
    std::cout << "launched as: " << result.launchCommand << "\n";
    std::cout << "job state:   " << jobStateName(result.jobState) << "\n";
    std::cout << "Triad FOM:   " << result.foms.at("Triad") << " MB/s\n\n";
  }

  // 3. Post-process: the perflog is the durable record (Principle 6).
  const DataFrame frame =
      perflogToDataFrame(PerfLog::parseLines(perflog.lines()));
  AsciiTable table("perflog contents:");
  table.setHeader({"system", "environ", "fom", "value", "result"});
  for (std::size_t i = 0; i < frame.rowCount(); ++i) {
    table.addRow({frame.strings("system")[i], frame.strings("environ")[i],
                  frame.strings("fom")[i], frame.cellText("value", i),
                  frame.strings("result")[i]});
  }
  std::cout << table.render();

  // 4. The trace is the other durable record: spans for every pipeline
  //    stage plus the run's metrics, ready for `rebench trace-report`.
  tracer.writeFile("quickstart_trace.jsonl", &metrics);
  std::cout << "trace written to quickstart_trace.jsonl\n";
  return 0;
}
