// Algorithm-vs-implementation study (the §3.2 workload): run the HPCG
// operator variants natively on this host, verify they solve the same
// problem, and compare their measured cost per degree of freedom — then
// project the study onto the paper's platforms with Equation 1.
//
//   $ ./hpcg_algorithm_study [grid-edge]     (default 20)
#include <cstdlib>
#include <iostream>

#include "core/postproc/efficiency.hpp"
#include "core/util/strings.hpp"
#include "core/util/table.hpp"
#include "hpcg/driver.hpp"

using namespace rebench;
using namespace rebench::hpcg;

int main(int argc, char** argv) {
  const int edge = argc > 1 ? std::atoi(argv[1]) : 20;
  if (edge < 8 || edge > 64) {
    std::cerr << "grid edge must be in [8, 64]\n";
    return 1;
  }

  // --- Native runs: real solves, wall-clock timing ----------------------
  AsciiTable native("Native HPCG variants on this host (" +
                    std::to_string(edge) + "^3, 50 CG iterations):");
  native.setHeader({"variant", "GFlop/s", "residual drop", "inf error",
                    "valid"});
  double csrGflops = 0.0;
  for (Variant v :
       {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
        Variant::kLfric}) {
    HpcgConfig config;
    config.variant = v;
    config.gridSize = edge;
    config.numRanks = 1;
    config.iterations = 50;
    const HpcgResult result = runNative(config);
    if (v == Variant::kCsr) csrGflops = result.gflops;
    native.addRow({std::string(variantName(v)),
                   str::fixed(result.gflops, 2),
                   str::fixed(result.finalResidual, 6),
                   str::fixed(result.solutionError, 6),
                   result.validated ? "yes" : "NO"});
  }
  std::cout << native.render() << "\n";

  // --- Equation 1 on this host ------------------------------------------
  std::cout << "Equation 1 on this host (E = VAR/ORIG):\n";
  for (Variant v : {Variant::kCsrOpt, Variant::kMatrixFree, Variant::kLfric}) {
    HpcgConfig config;
    config.variant = v;
    config.gridSize = edge;
    config.iterations = 50;
    const HpcgResult result = runNative(config);
    std::cout << "  E(" << variantName(v) << ") = "
              << str::fixed(applicationEfficiency(result.gflops, csrGflops),
                            3)
              << "\n";
  }

  // --- Projection onto the paper's platforms -----------------------------
  AsciiTable projected(
      "\nProjected onto the paper's platforms (104^3/rank, 50 iters):");
  projected.setHeader({"variant", "CLX 40 ranks", "Rome 128 ranks"});
  const MachineModel& clx = builtinMachines().get("clx-6230");
  const MachineModel& rome = builtinMachines().get("rome-7742");
  for (Variant v :
       {Variant::kCsr, Variant::kCsrOpt, Variant::kMatrixFree,
        Variant::kLfric}) {
    HpcgConfig config;
    config.variant = v;
    config.gridSize = 104;
    config.iterations = 50;
    std::vector<std::string> row{std::string(variantName(v))};
    config.numRanks = 40;
    row.push_back(variantAvailable(v, clx)
                      ? str::fixed(runModeled(config, clx).gflops, 1)
                      : "N/A");
    config.numRanks = 128;
    row.push_back(variantAvailable(v, rome)
                      ? str::fixed(runModeled(config, rome).gflops, 1)
                      : "N/A");
    projected.addRow(row);
  }
  std::cout << projected.render();
  std::cout << "\nThe algorithmic axis (CSR -> matrix-free) buys more than "
               "the implementation axis (CSR -> vendor-optimised): the "
               "paper's §3.2 observation, reproduced.\n";
  return 0;
}
